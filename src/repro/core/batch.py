"""Generation-batched candidate evaluation (stacked value matrices).

Evaluating a whole candidate generation one circuit at a time repeats
the same structural work per child: the topological order, the fan-out
map, and the transitive-fan-out cone walks are all recomputed on every
candidate even though most of each child is identical to a shared
parent.  :func:`evaluate_batch` amortises that across the generation:

* children are grouped by the parent evaluation their provenance record
  points at (the error/timing *values* still come from each child's own
  changed cone, so grouping loses nothing);
* each group reuses the **parent's** cached row index, level schedule,
  fan-out map and TFO cones — the child never builds its own O(V+E)
  structures;
* all children of one parent simulate against a single stacked
  ``(B, rows, num_words)`` tensor forked from the parent's
  :class:`~repro.sim.store.ValueStore` matrix.  A dirty gate shared by
  several children is gathered and evaluated as **one** numpy op across
  all of them, and gates are grouped per topological level by cell
  function (the :func:`~repro.sta.store.timing_plan` analogue), so the
  Python dispatch cost is paid per (level, function) instead of per
  (gate, child);
* timing runs the same way: the parent's five timing arrays are forked
  into one ``(B, rows)`` tensor per quantity and the masked incremental
  frontier (:func:`repro.sta.update_timing_batch`) walks all children
  level by level, dirty (child, gate) pairs bucketed per (level, cell)
  with one batched NLDM lookup per bucket — instead of B independent
  per-child ``update_timing`` frontier walks;
* children in ``singles`` that share a full structure key are evaluated
  once per key and the result is shared by item index.

Correctness of the stacked walk rests on two facts, both checked per
child with cheap O(cone) guards that fall back to
:func:`~repro.core.fitness.evaluate_incremental` when violated:

1. A child's dirty set (TFO of its changed gates) computed on the parent
   graph equals the one computed on the child graph: edges into an
   unchanged gate are identical in both, and changed gates are seeds.
2. The parent's topological *level* schedule remains a valid evaluation
   order for the child's dirty cone as long as every *changed* gate's
   fan-ins sit at a strictly lower parent level (unchanged gates inherit
   validity from the parent's own edges).  LACs always satisfy this —
   switches come from the target's TFI — and it is the same predicate
   :func:`repro.sta.update_timing` uses to reuse the parent's levels.

Results are **bit-identical** to the sequential incremental path (and
therefore to the full path): every gate value is a pure elementwise
bitwise word operation (``word_eval_many`` row-by-row equals
``word_eval`` exactly), evaluated after all of its fan-in rows, and the
metric tail runs through the same
:func:`~repro.core.fitness._finish_eval`.  Pinned by
``tests/test_session_api.py`` and ``tests/test_value_store.py``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..analysis.sanitize import publish_array
from ..netlist import Circuit
from ..sim.bitsim import _const_rows, resimulate_cone
from ..sim.store import ValueStore, value_rows, value_store_index
from ..cells import FUNCTIONS, split_cell_name
from ..netlist import PI_CELL, PO_CELL
from ..sta import (
    TimingReport,
    shared_levels_valid,
    timing_levels,
    update_timing,
    update_timing_batch,
)
from .fitness import (
    CircuitEval,
    EvalContext,
    ParentEvals,
    _finish_eval,
    _match_parent,
    evaluate,
    evaluate_incremental,
)

#: One batch entry: the candidate circuit plus the parent eval(s) its
#: provenance record may point at (same contract as the incremental path).
BatchItem = Tuple[Circuit, ParentEvals]

#: Minimum (child, gate) pairs before a (level, function) group takes
#: the stacked kernel; smaller groups run the scalar row loop.  Both
#: are bit-identical (elementwise uint64 ops), so this is a pure perf
#: knob like :data:`repro.sta.store.VECTOR_MIN_GROUP`.
STACK_MIN_GROUP = 2

#: Route a group's timing updates through the stacked incremental
#: frontier (:func:`repro.sta.update_timing_batch`) instead of
#: per-child :func:`repro.sta.update_timing` calls.  Both are
#: bit-identical (pinned by tests); the toggle exists so equivalence
#: can be asserted end-to-end with the stacked frontier on vs off.
USE_STACKED_TIMING = True


def _normalize_parents(parents: ParentEvals) -> Sequence[CircuitEval]:
    if parents is None:
        return ()
    if isinstance(parents, CircuitEval):
        return (parents,)
    return tuple(parents)


#: One provenance group: the matched parent eval plus its children as
#: ``(item_index, circuit, changed_gate_ids)`` triples.
ParentGroup = Tuple[CircuitEval, List[Tuple[int, Circuit, FrozenSet[int]]]]


def group_by_parent(
    items: Sequence[BatchItem],
) -> Tuple[List[ParentGroup], List[Tuple[int, Circuit]]]:
    """Partition a generation into provenance groups.

    Children whose provenance record matches one of their offered parent
    evals are grouped under that parent (groups appear in first-seen
    parent order, children in item order); everything else — missing,
    stale, or unmatched provenance — lands in ``singles`` and must be
    fully evaluated.  This is the partition both the in-process batch
    walk below and the multi-process shard dispatcher
    (:mod:`repro.core.parallel`) schedule from, so the two backends
    agree on which child takes which evaluation path.
    """
    groups: List[ParentGroup] = []
    index_of: Dict[int, int] = {}
    singles: List[Tuple[int, Circuit]] = []
    for i, (circuit, parents) in enumerate(items):
        match = _match_parent(circuit, _normalize_parents(parents))
        if match is None:
            singles.append((i, circuit))
            continue
        parent, changed = match
        key = id(parent)
        slot = index_of.get(key)
        if slot is None:
            slot = len(groups)
            index_of[key] = slot
            groups.append((parent, []))
        groups[slot][1].append((i, circuit, changed))
    return groups, singles


#: The level-validity guard now lives beside the frontier walks it
#: gates (:func:`repro.sta.shared_levels_valid`); the historical name
#: is kept for the call sites below.
_shared_levels_valid = shared_levels_valid


def _shared_order_valid(
    pos: Dict[int, int], circuit: Circuit, changed: FrozenSet[int]
) -> bool:
    """Topo-position variant of the guard (the dict-walk fallback)."""
    fanins = circuit.fanins
    for gid in changed:
        if gid < 0:
            continue
        pg = pos.get(gid)
        fis = fanins.get(gid)
        if pg is None or fis is None:
            return False
        for fi in fis:
            if fi < 0:
                continue
            pf = pos.get(fi)
            if pf is None or pf >= pg:
                return False
    return True


#: A dispatch record: (level, function-or-None-for-PO, row, fan-in rows).
_GateRec = Tuple[int, Optional[str], int, Tuple[int, ...]]


def _batch_against_parent(
    ctx: EvalContext,
    parent: CircuitEval,
    group: List[Tuple[int, Circuit, FrozenSet[int]]],
    out: List[Optional[CircuitEval]],
) -> None:
    """Evaluate one parent's children on one stacked value tensor."""
    pc = parent.circuit
    pvals = parent.values
    if not isinstance(pvals, ValueStore) or not pvals.covers(pc):
        # The parent eval predates the SoA store (e.g. a dict produced
        # by the diverged resimulate_cone fallback): run the historical
        # per-child dict walk — same results, no stacking.
        _batch_against_parent_rows(ctx, parent, group, out)
        return
    index = pvals.index
    levels = pc._cached("timing_levels")
    if levels is None and not pc.gid_order_topo():
        levels = timing_levels(pc)
    if levels is not None:
        level_of = levels.level_of
        recs_key = "batch_value_recs"
    else:
        # Rows are sorted gate IDs; on a gid-topological parent (every
        # population member) "one row per level" is already a valid
        # stratification, so a fresh chase parent never pays the
        # O(V+E) level build just to schedule its few children.  An
        # already-memoized level schedule (the reference parent) is
        # still preferred — it groups wide levels into fewer buckets.
        # The record memo is keyed per schedule kind: records embed
        # level numbers, and mixing the two schedules would interleave
        # incomparable keys.
        level_of = np.arange(index.n, dtype=np.int32)
        recs_key = "batch_value_recs_rows"
    row_of = index.row
    vrows = value_rows(index)

    ready: List[Tuple[int, Circuit, Set[int], FrozenSet[int]]] = []
    for item_index, circuit, changed in group:
        if (
            not circuit.same_gid_set(pc)
            or not _shared_levels_valid(level_of, row_of, circuit, changed)
        ):
            # Structure diverged beyond what the stacked walk covers
            # (gates added/removed, or a rewrite against the parent's
            # level order): this child takes the sequential path, same
            # results.
            out[item_index] = evaluate_incremental(ctx, circuit, parent)
            continue
        dirty: Set[int] = set()
        for gid in changed:
            if gid >= 0:
                # The parent's memoized TFO equals the child's here (see
                # module docstring), so cone walks are shared too.
                dirty |= pc.transitive_fanout(gid, include_self=True)
        ready.append((item_index, circuit, dirty, changed))
    if not ready:
        return

    if len(ready) == 1:
        # A one-child group gains nothing from stacking; reuse the
        # sequential dirty-row walk (one shared kernel, same bits) with
        # the cone already computed on the parent's structures.  DCGWO
        # chase children mostly pair distinct parents, so this is hot.
        item_index, circuit, dirty, changed = ready[0]
        values = resimulate_cone(
            circuit, ctx.vectors, pvals, changed, dirty=dirty
        )
        report = update_timing(ctx.sta, circuit, parent.report, changed)
        out[item_index] = _finish_eval(ctx, circuit, report, values)
        return

    # Every child starts as a full copy of the parent's matrix (PI and
    # constant rows included), then only dirty rows are overwritten —
    # the tensor analogue of `dict(parent.values)` per child.
    matrix = pvals.matrix
    stacked = np.empty((len(ready),) + matrix.shape, dtype=matrix.dtype)
    stacked[:] = matrix

    # Dispatch: bucket every (child, dirty gate) pair per (level,
    # function).  Records for *unchanged* gates are a pure function of
    # the parent structure, memoized on the parent across generations;
    # changed gates read the child's own cell/fan-ins.
    recs: Dict[int, Optional[_GateRec]] = pc._cached(recs_key)
    if recs is None:
        recs = pc._store(recs_key, {})
    pcells = pc.cells
    pfanins = pc.fanins
    func_buckets: Dict[Tuple[int, str], List[Tuple[int, int, Tuple[int, ...]]]] = {}
    po_buckets: Dict[int, List[Tuple[int, int, int]]] = {}
    for k, (_, circuit, dirty, changed) in enumerate(ready):
        ccells = circuit.cells
        cfanins = circuit.fanins
        for gid in dirty:
            if gid in changed:
                cell = ccells[gid]
                if cell == PI_CELL:
                    continue
                r = row_of[gid]
                lv = int(level_of[r])
                fis = cfanins[gid]
                if cell == PO_CELL:
                    po_buckets.setdefault(lv, []).append(
                        (k, r, vrows[fis[0]])
                    )
                    continue
                function, _ = split_cell_name(cell)
                func_buckets.setdefault((lv, function), []).append(
                    (k, r, tuple(vrows[fi] for fi in fis))
                )
                continue
            rec = recs.get(gid, False)
            if rec is False:
                cell = pcells[gid]
                if cell == PI_CELL:
                    rec = None
                else:
                    r = row_of[gid]
                    lv = int(level_of[r])
                    fis = pfanins[gid]
                    if cell == PO_CELL:
                        rec = (lv, None, r, (vrows[fis[0]],))
                    else:
                        function, _ = split_cell_name(cell)
                        rec = (
                            lv,
                            function,
                            r,
                            tuple(vrows[fi] for fi in fis),
                        )
                # lint: allow[R1] append-only memo fill, version-scoped
                recs[gid] = rec
            if rec is None:
                continue
            lv, function, r, frows = rec
            if function is None:
                po_buckets.setdefault(lv, []).append((k, r, frows[0]))
            else:
                func_buckets.setdefault((lv, function), []).append(
                    (k, r, frows)
                )

    # Execute level by level; within a level, groups are independent
    # (all fan-ins sit at lower levels) and each (child, row) pair is
    # written exactly once, so bucket order cannot change any bit.
    by_level: Dict[int, List[str]] = {}
    for lv, function in func_buckets:
        by_level.setdefault(lv, []).append(function)
    for lv in sorted(set(by_level) | set(po_buckets)):
        for function in sorted(by_level.get(lv, ())):
            pairs = func_buckets[(lv, function)]
            fn = FUNCTIONS[function]
            if len(pairs) >= STACK_MIN_GROUP:
                ks = np.array([p[0] for p in pairs], dtype=np.int64)
                rows = np.array([p[1] for p in pairs], dtype=np.int64)
                frows = np.array([p[2] for p in pairs], dtype=np.int64)
                gathered = stacked[ks[:, None], frows]  # (P, arity, W)
                stacked[ks, rows] = fn.word_eval_many(
                    [gathered[:, j] for j in range(frows.shape[1])]
                )
            else:
                word_eval = fn.word_eval
                for k, r, frows in pairs:
                    child_matrix = stacked[k]
                    child_matrix[r] = word_eval(
                        [child_matrix[f] for f in frows]
                    )
        po_pairs = po_buckets.get(lv)
        if po_pairs:
            ks = np.array([p[0] for p in po_pairs], dtype=np.int64)
            rows = np.array([p[1] for p in po_pairs], dtype=np.int64)
            srcs = np.array([p[2] for p in po_pairs], dtype=np.int64)
            stacked[ks, rows] = stacked[ks, srcs]

    # Timing across the whole brood at once: the stacked incremental
    # frontier runs the same masked walk per-child update_timing would,
    # batched per (level, cell) — bit-identical floats (one shared
    # kernel, same seeds, same propagation predicate).  Then the metric
    # tail per child; each child takes its own matrix copy so an
    # archived eval never pins the whole generation's tensor.
    if USE_STACKED_TIMING:
        reports = update_timing_batch(
            ctx.sta,
            parent.report,
            [(circuit, changed) for _, circuit, _, changed in ready],
        )
    else:
        reports = [
            update_timing(ctx.sta, circuit, parent.report, changed)
            for _, circuit, _, changed in ready
        ]
    for k, (item_index, circuit, _, changed) in enumerate(ready):
        store = ValueStore(index, publish_array(stacked[k].copy()))
        out[item_index] = _finish_eval(ctx, circuit, reports[k], store)


def _batch_against_parent_rows(
    ctx: EvalContext,
    parent: CircuitEval,
    group: List[Tuple[int, Circuit, FrozenSet[int]]],
    out: List[Optional[CircuitEval]],
) -> None:
    """Historical shared topo walk over per-child dict value maps.

    Kept as the fallback for parent evals without a dense store; every
    result is bit-identical to the stacked walk and to the sequential
    incremental path.
    """
    pc = parent.circuit
    order = pc.topological_order()
    pos = {gid: i for i, gid in enumerate(order)}

    ready: List[Tuple[int, Circuit, Set[int], FrozenSet[int]]] = []
    for index, circuit, changed in group:
        if (
            not circuit.same_gid_set(pc)
            or not _shared_order_valid(pos, circuit, changed)
        ):
            out[index] = evaluate_incremental(ctx, circuit, parent)
            continue
        dirty: Set[int] = set()
        for gid in changed:
            if gid >= 0:
                dirty |= pc.transitive_fanout(gid, include_self=True)
        ready.append((index, circuit, dirty, changed))
    if not ready:
        return

    num_words = ctx.vectors.num_words
    const_rows = _const_rows(num_words)
    pi_rows = {
        pi: ctx.vectors.words[row] for row, pi in enumerate(pc.pi_ids)
    }
    values_list: List[Dict[int, np.ndarray]] = []
    for _, circuit, _, _ in ready:
        values: Dict[int, np.ndarray] = dict(parent.values)
        values.update(const_rows)
        values.update(pi_rows)
        values_list.append(values)

    touch: Dict[int, List[int]] = {}
    for k, (_, _, dirty, _) in enumerate(ready):
        for gid in dirty:
            touch.setdefault(gid, []).append(k)
    for gid in order:
        ks = touch.get(gid)
        if not ks:
            continue
        for k in ks:
            circuit = ready[k][1]
            cell = circuit.cells[gid]
            if cell == PI_CELL:
                continue
            values = values_list[k]
            fis = circuit.fanins[gid]
            if cell == PO_CELL:
                values[gid] = values[fis[0]]
                continue
            function, _ = split_cell_name(cell)
            values[gid] = FUNCTIONS[function].word_eval(
                [values[fi] for fi in fis]
            )

    timing_levels(pc)
    if USE_STACKED_TIMING:
        reports = update_timing_batch(
            ctx.sta,
            parent.report,
            [(circuit, changed) for _, circuit, _, changed in ready],
        )
    else:
        reports = [
            update_timing(ctx.sta, circuit, parent.report, changed)
            for _, circuit, _, changed in ready
        ]
    for k, (index, circuit, _, changed) in enumerate(ready):
        out[index] = _finish_eval(ctx, circuit, reports[k], values_list[k])


def _evaluate_batch_core(
    ctx: EvalContext, items: Sequence[BatchItem]
) -> List[CircuitEval]:
    """The cache-oblivious batch evaluator (see :func:`evaluate_batch`)."""
    out: List[Optional[CircuitEval]] = [None] * len(items)
    groups, singles = group_by_parent(items)
    first_of: Dict[bytes, int] = {}
    for i, circuit in singles:
        key = circuit.full_structure_key()
        j = first_of.get(key)
        if j is None:
            first_of[key] = i
            out[i] = evaluate(ctx, circuit)
        else:
            # Mirror _finish_eval's provenance release on the duplicate
            # (its record was never consumed), then hand the item its
            # own eval record: metrics/report/values are shared with
            # the evaluated twin (read-only, and identical floats by
            # full-structure equality), but ``eval.circuit`` stays the
            # circuit passed at this index so identity-keyed callers
            # and future provenance matches against it keep working.
            circuit.provenance = None
            first = out[j]
            out[i] = replace(
                first, circuit=circuit, circuit_version=circuit.version
            )
    for parent, group in groups:
        _batch_against_parent(ctx, parent, group, out)
    return out  # type: ignore[return-value]


def _rebuild_cached_eval(
    ctx: EvalContext, circuit: Circuit, payload: Tuple
) -> Optional[CircuitEval]:
    """Turn a lake payload back into a live eval for ``circuit``.

    The payload holds only context-key-pure data (the five SoA timing
    arrays and the dense value matrix); the metric tail is re-run
    through the same :func:`~repro.core.fitness._finish_eval` every
    computed path uses, so a hit is bit-identical to a fresh
    evaluation by construction.  The report and store are rebuilt on
    the *requesting* circuit's memoized row index and current version —
    a cached record never leaks its original circuit object.  Returns
    ``None`` (caller recomputes) if the payload's shape does not match
    the circuit — defense in depth; the composite key already rules
    this out short of digest collisions.
    """
    try:
        arrival, slew, load, unit_depth, critical, matrix = payload
    except (TypeError, ValueError):
        return None
    index = value_store_index(circuit)
    if (
        getattr(arrival, "shape", None) != (index.n + 1,)
        or getattr(matrix, "shape", (0,))[0] != index.n + 2
    ):
        return None
    report = TimingReport(
        circuit,
        index,
        arrival,
        slew,
        load,
        unit_depth,
        critical,
        circuit.version,
    )
    # Lake payloads arrive writable (pickle round-trip): republish.
    values = ValueStore(index, publish_array(matrix))
    return _finish_eval(ctx, circuit, report, values)


def _store_new_evals(
    cache, lib: bytes, vec: bytes,
    keys: Sequence[bytes], evals: Sequence[CircuitEval],
) -> None:
    """Write freshly computed evals through to the lake.

    Only dense-store evals are cached: the diverged-fallback path's
    dict value maps are rare, and keeping the stored layout uniform
    means a hit always reconstructs the same ``ValueStore`` type the
    mainline paths produce.
    """
    entries = []
    seen: Set[bytes] = set()
    for key, ev in zip(keys, evals):
        if key in seen:
            continue
        seen.add(key)
        values = ev.values
        if not isinstance(values, ValueStore):
            continue
        entries.append((key, (*ev.report.pack()[:5], values.matrix)))
    if entries:
        cache.put_many(lib, vec, entries)


def evaluate_batch(
    ctx: EvalContext, items: Sequence[BatchItem]
) -> List[CircuitEval]:
    """Evaluate a generation of candidates with shared structural work.

    ``items`` pairs each candidate circuit with the parent eval(s) its
    provenance may match (exactly what the sequential loop would pass to
    :func:`~repro.core.fitness.evaluate_incremental`).  Children sharing
    a matched parent are evaluated on one stacked value tensor;
    unmatched or structurally-diverged children fall back to the
    sequential path.  Full-evaluation singles that share a *complete*
    structure (:meth:`~repro.netlist.Circuit.full_structure_key`, which
    covers dangling gates — two live-equal circuits can still differ in
    dangling loads and therefore in timing) are evaluated once per key
    and the result shared by item index; a duplicate's metrics are the
    same floats a separate evaluation would produce, because evaluation
    is a pure function of the full structure.

    When the context has an evaluation lake attached (``cache=`` /
    ``cache_dir=`` on the session or config, or the ``REPRO_CACHE``
    environment), every item is first looked up by its
    ``(structure key, library digest, vector digest)`` address; hits
    skip STA and simulation entirely and re-run only the metric tail,
    misses are computed by the core path and written through.  Items
    sharing a key with a hit share one rebuilt report/value store,
    mirroring the singles dedup above.

    Returns one :class:`CircuitEval` per item, in order — bit-identical
    to evaluating each item with ``evaluate_incremental``, with or
    without a cache.
    """
    from ..lake import context_cache, context_digests

    cache = context_cache(ctx)
    if cache is None or not items:
        return _evaluate_batch_core(ctx, items)
    lib, vec = context_digests(ctx)
    keys = [circuit.full_structure_key() for circuit, _ in items]
    hits = cache.get_many(lib, vec, keys)
    out: List[Optional[CircuitEval]] = [None] * len(items)
    first_of: Dict[bytes, int] = {}
    miss_items: List[BatchItem] = []
    miss_pos: List[int] = []
    for i, ((circuit, parents), key) in enumerate(zip(items, keys)):
        payload = hits.get(key)
        rebuilt: Optional[CircuitEval] = None
        if payload is not None:
            j = first_of.get(key)
            if j is not None:
                # Same dedup contract as the core singles path: share
                # the rebuilt twin's report/values, keep this item's
                # own circuit, release its unconsumed provenance.
                circuit.provenance = None
                out[i] = replace(
                    out[j], circuit=circuit, circuit_version=circuit.version
                )
                continue
            rebuilt = _rebuild_cached_eval(ctx, circuit, payload)
        if rebuilt is None:
            miss_items.append((circuit, parents))
            miss_pos.append(i)
            continue
        first_of[key] = i
        out[i] = rebuilt
    if miss_items:
        computed = _evaluate_batch_core(ctx, miss_items)
        for pos, ev in zip(miss_pos, computed):
            out[pos] = ev
        _store_new_evals(
            cache, lib, vec, [keys[p] for p in miss_pos], computed
        )
    return out  # type: ignore[return-value]
