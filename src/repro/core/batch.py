"""Generation-batched candidate evaluation (shared parent topo walk).

Evaluating a whole candidate generation one circuit at a time repeats
the same structural work per child: the topological order, the fan-out
map, and the transitive-fan-out cone walks are all recomputed on every
candidate even though most of each child is identical to a shared
parent.  :func:`evaluate_batch` amortises that across the generation:

* children are grouped by the parent evaluation their provenance record
  points at (the error/timing *values* still come from each child's own
  changed cone, so grouping loses nothing);
* each group reuses the **parent's** cached topological order, fan-out
  map and TFO cones — the child never builds its own O(V+E) structures;
* one walk over the parent's topological order visits every child's
  dirty gates in a single pass (the ROADMAP's "shared topo walk,
  stacked value matrices" item).

Correctness rests on two facts, both checked per child with cheap O(cone)
guards that fall back to :func:`~repro.core.fitness.evaluate_incremental`
when violated:

1. A child's dirty set (TFO of its changed gates) computed on the parent
   graph equals the one computed on the child graph: edges into an
   unchanged gate are identical in both, and changed gates are seeds.
2. The parent's topological order remains a valid evaluation order for
   the child's dirty cone as long as every *changed* gate's fan-ins sit
   earlier in that order (unchanged gates inherit validity from the
   parent).  LACs always satisfy this (switches come from the TFI), and
   reproduction children of a common ancestor's ID space almost always
   do.

Results are **bit-identical** to the sequential incremental path (and
therefore to the full path): each gate's value depends only on its
fan-in rows, which the validity guard orders correctly, and the metric
tail runs through the same :func:`~repro.core.fitness._finish_eval`.
Pinned by ``tests/test_session_api.py``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..netlist import Circuit
from ..sim.bitsim import ValueMap, _const_rows
from ..cells import FUNCTIONS, split_cell_name
from ..netlist import PI_CELL, PO_CELL
from .fitness import (
    CircuitEval,
    EvalContext,
    ParentEvals,
    _finish_eval,
    _match_parent,
    evaluate,
    evaluate_incremental,
)

#: One batch entry: the candidate circuit plus the parent eval(s) its
#: provenance record may point at (same contract as the incremental path).
BatchItem = Tuple[Circuit, ParentEvals]


def _normalize_parents(parents: ParentEvals) -> Sequence[CircuitEval]:
    if parents is None:
        return ()
    if isinstance(parents, CircuitEval):
        return (parents,)
    return tuple(parents)


#: One provenance group: the matched parent eval plus its children as
#: ``(item_index, circuit, changed_gate_ids)`` triples.
ParentGroup = Tuple[CircuitEval, List[Tuple[int, Circuit, FrozenSet[int]]]]


def group_by_parent(
    items: Sequence[BatchItem],
) -> Tuple[List[ParentGroup], List[Tuple[int, Circuit]]]:
    """Partition a generation into provenance groups.

    Children whose provenance record matches one of their offered parent
    evals are grouped under that parent (groups appear in first-seen
    parent order, children in item order); everything else — missing,
    stale, or unmatched provenance — lands in ``singles`` and must be
    fully evaluated.  This is the partition both the in-process batch
    walk below and the multi-process shard dispatcher
    (:mod:`repro.core.parallel`) schedule from, so the two backends
    agree on which child takes which evaluation path.
    """
    groups: List[ParentGroup] = []
    index_of: Dict[int, int] = {}
    singles: List[Tuple[int, Circuit]] = []
    for i, (circuit, parents) in enumerate(items):
        match = _match_parent(circuit, _normalize_parents(parents))
        if match is None:
            singles.append((i, circuit))
            continue
        parent, changed = match
        key = id(parent)
        slot = index_of.get(key)
        if slot is None:
            slot = len(groups)
            index_of[key] = slot
            groups.append((parent, []))
        groups[slot][1].append((i, circuit, changed))
    return groups, singles


def _shared_order_valid(
    pos: Dict[int, int], circuit: Circuit, changed: FrozenSet[int]
) -> bool:
    """Can the parent's topo order drive this child's dirty cone?

    Only the *changed* gates can have rewired fan-ins; every one of them
    (and each of its fan-ins) must exist in the parent order with the
    fan-in strictly earlier.  Unchanged gates carry the parent's edges
    and are valid by construction.
    """
    fanins = circuit.fanins
    for gid in changed:
        if gid < 0:
            continue
        pg = pos.get(gid)
        fis = fanins.get(gid)
        if pg is None or fis is None:
            return False
        for fi in fis:
            if fi < 0:
                continue
            pf = pos.get(fi)
            if pf is None or pf >= pg:
                return False
    return True


def _batch_against_parent(
    ctx: EvalContext,
    parent: CircuitEval,
    group: List[Tuple[int, Circuit, FrozenSet[int]]],
    out: List[Optional[CircuitEval]],
) -> None:
    """Evaluate one parent's children with a single shared topo walk."""
    pc = parent.circuit
    order = pc.topological_order()
    pos = {gid: i for i, gid in enumerate(order)}
    parent_keys = pc.fanins.keys()

    ready: List[Tuple[int, Circuit, Set[int], FrozenSet[int]]] = []
    for index, circuit, changed in group:
        if (
            circuit.fanins.keys() != parent_keys
            or not _shared_order_valid(pos, circuit, changed)
        ):
            # Structure diverged beyond what the shared walk covers
            # (gates added/removed, or a rewrite against parent order):
            # this child takes the sequential path, same results.
            out[index] = evaluate_incremental(ctx, circuit, parent)
            continue
        dirty: Set[int] = set()
        for gid in changed:
            if gid >= 0:
                # The parent's memoized TFO equals the child's here (see
                # module docstring), so cone walks are shared too.
                dirty |= pc.transitive_fanout(gid, include_self=True)
        ready.append((index, circuit, dirty, changed))
    if not ready:
        return

    num_words = ctx.vectors.num_words
    const_rows = _const_rows(num_words)
    pi_rows = {
        pi: ctx.vectors.words[row] for row, pi in enumerate(pc.pi_ids)
    }
    values_list: List[ValueMap] = []
    for _, circuit, _, _ in ready:
        values: ValueMap = dict(parent.values)
        values.update(const_rows)
        values.update(pi_rows)
        values_list.append(values)

    # The shared walk: visit each gate of the parent order once and
    # evaluate it for exactly the children whose cones it dirties.
    touch: Dict[int, List[int]] = {}
    for k, (_, _, dirty, _) in enumerate(ready):
        for gid in dirty:
            touch.setdefault(gid, []).append(k)
    for gid in order:
        ks = touch.get(gid)
        if not ks:
            continue
        for k in ks:
            circuit = ready[k][1]
            cell = circuit.cells[gid]
            if cell == PI_CELL:
                continue
            values = values_list[k]
            fis = circuit.fanins[gid]
            if cell == PO_CELL:
                values[gid] = values[fis[0]]
                continue
            function, _ = split_cell_name(cell)
            values[gid] = FUNCTIONS[function].word_eval(
                [values[fi] for fi in fis]
            )

    # Timing + metric tail per child (identical calls to the sequential
    # path; update_timing rederives loads only around the changed gates).
    # Warming the parent's level assignment here makes the cost explicit:
    # every child's masked SoA update walks the same memoized schedule,
    # so the O(V+E) level build is paid once per parent per version.
    from ..sta import timing_levels, update_timing

    timing_levels(pc)
    for k, (index, circuit, _, changed) in enumerate(ready):
        report = update_timing(ctx.sta, circuit, parent.report, changed)
        out[index] = _finish_eval(ctx, circuit, report, values_list[k])


def evaluate_batch(
    ctx: EvalContext, items: Sequence[BatchItem]
) -> List[CircuitEval]:
    """Evaluate a generation of candidates with shared structural work.

    ``items`` pairs each candidate circuit with the parent eval(s) its
    provenance may match (exactly what the sequential loop would pass to
    :func:`~repro.core.fitness.evaluate_incremental`).  Children sharing
    a matched parent are evaluated in one shared topo walk; unmatched or
    structurally-diverged children fall back to the sequential path.

    Returns one :class:`CircuitEval` per item, in order — bit-identical
    to evaluating each item with ``evaluate_incremental``.
    """
    out: List[Optional[CircuitEval]] = [None] * len(items)
    groups, singles = group_by_parent(items)
    for i, circuit in singles:
        out[i] = evaluate(ctx, circuit)
    for parent, group in groups:
        _batch_against_parent(ctx, parent, group, out)
    return out  # type: ignore[return-value]
