"""The circuit-searching approximate action (paper §III-B, Fig. 5 left).

Searching shortens critical paths with wire-by-wire / wire-by-constant
LACs:

1. extract the critical paths (maximum propagation time PI -> PO);
2. collect their gates into the targets set ``Tc``; sample each gate
   against a uniform(0,1) draw and, above 0.5, pull its fan-ins into
   ``Tc`` as well;
3. pick a random target from ``Tc``;
4. pick the switch with the highest simulated output similarity among
   the target's transitive fan-in and the constants '0'/'1'.
"""

from __future__ import annotations

import random
from typing import List, Optional, Set

from ..netlist import Circuit
from ..sim import best_switch
from ..sta import critical_paths, path_logic_gates
from .fitness import CircuitEval, EvalContext
from .lacs import LAC, applied_copy, is_safe


def collect_targets(
    ev: CircuitEval, rng: random.Random, num_paths: int = 3
) -> List[int]:
    """Build the targets set ``Tc`` from the critical paths."""
    circuit = ev.circuit
    targets: Set[int] = set()
    for path in critical_paths(ev.report, count=num_paths):
        for gid in path_logic_gates(circuit, path):
            targets.add(gid)
            if rng.random() > 0.5:
                targets.update(
                    fi
                    # Constants are the only negative IDs (R5):
                    # `fi >= 0` is `not is_const(fi)` without a call.
                    for fi in circuit.fanins[gid]
                    if fi >= 0 and circuit.is_logic(fi)
                )
    return sorted(targets)


def propose_search_lac(
    ev: CircuitEval,
    ctx: EvalContext,
    rng: random.Random,
    num_paths: int = 3,
) -> Optional[LAC]:
    """Choose the (target, switch) pair for one searching step.

    Returns ``None`` when no admissible move exists (e.g. the critical
    path has already collapsed onto constants).
    """
    targets = collect_targets(ev, rng, num_paths)
    if not targets:
        return None
    target = targets[rng.randrange(len(targets))]
    found = best_switch(
        ev.circuit, ev.values, target, ctx.vectors.num_vectors
    )
    if found is None:
        return None
    lac = LAC(target=target, switch=found[0])
    if not is_safe(ev.circuit, lac):
        return None
    return lac


def circuit_search(
    ev: CircuitEval,
    ctx: EvalContext,
    rng: random.Random,
    num_paths: int = 3,
) -> Optional[Circuit]:
    """Produce a searched child circuit, or ``None`` if no move exists."""
    lac = propose_search_lac(ev, ctx, rng, num_paths)
    if lac is None:
        return None
    return applied_copy(ev.circuit, lac)


def circuit_simplify(
    ev: CircuitEval,
    ctx: EvalContext,
    rng: random.Random,
    num_paths: int = 3,
) -> Optional[Circuit]:
    """Gate-simplification variant of searching (extension, see
    :mod:`repro.core.simplify`): rewrite a random critical-path gate in
    place with a cheaper cell instead of substituting its output."""
    from .simplify import propose_simplification, simplified_copy

    targets = collect_targets(ev, rng, num_paths)
    if not targets:
        return None
    target = targets[rng.randrange(len(targets))]
    simp = propose_simplification(
        ev.circuit, ev.values, target, ctx.vectors.num_vectors, rng
    )
    if simp is None:
        return None
    return simplified_copy(ev.circuit, simp)
