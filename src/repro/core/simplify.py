"""Gate-simplification LACs (extension beyond the paper's two kinds).

The paper's framework uses wire-by-wire and wire-by-constant
substitutions.  The broader ALS literature it cites (SASIMI, gate-level
pruning, HEDALS) also simplifies gates *in place*: replace a cell with a
cheaper cell of the same arity whose function is close on the observed
input distribution, or drop a gate's latest-arriving fan-in and fall
back to a smaller cell.  Both moves keep the gate ID space intact, so
they compose with reproduction exactly like the paper's LACs.

Enabled via ``DCGWOConfig(enable_simplification=True)``; the default
stays paper-faithful.  The ablation bench quantifies the effect.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cells import FUNCTIONS, cell_name, split_cell_name
from ..netlist import Circuit
from ..sim.bitsim import ValueMap
from ..sim.vectors import count_ones

#: Same-arity replacement candidates, cheaper/faster first.
_FUNCTION_FAMILIES: Dict[int, Tuple[str, ...]] = {
    1: ("BUF", "INV"),
    2: ("NAND2", "NOR2", "AND2", "OR2", "XOR2", "XNOR2"),
    3: ("NAND3", "NOR3", "AND3", "OR3", "AOI21", "OAI21", "MUX2",
        "XOR3", "MAJ3"),
    4: ("AND4", "OR4"),
}

#: Arity-reduction fallbacks when one fan-in is dropped.
_DROP_FALLBACK: Dict[str, str] = {
    "AND3": "AND2",
    "OR3": "OR2",
    "NAND3": "NAND2",
    "NOR3": "NOR2",
    "XOR3": "XOR2",
    "AND4": "AND3",
    "OR4": "OR3",
    "AND2": "BUF",
    "OR2": "BUF",
    "XOR2": "BUF",
    "NAND2": "INV",
    "NOR2": "INV",
    "XNOR2": "INV",
}


@dataclass(frozen=True)
class Simplification:
    """One in-place gate rewrite.

    ``new_fanins`` is ``None`` for pure function swaps (same pins);
    otherwise it holds the reduced fan-in tuple of a drop move.
    """

    gate: int
    new_cell: str
    new_fanins: Optional[Tuple[int, ...]] = None

    def __str__(self) -> str:
        if self.new_fanins is None:
            return f"simplify({self.gate} -> {self.new_cell})"
        return (
            f"drop-fanin({self.gate} -> {self.new_cell}"
            f"{self.new_fanins})"
        )


def _agreement(
    values: ValueMap,
    candidate_fn: str,
    fanins: Sequence[int],
    reference: np.ndarray,
    num_vectors: int,
) -> float:
    """Fraction of vectors where a rewritten gate matches its old output."""
    fn = FUNCTIONS[candidate_fn]
    out = fn.word_eval([values[fi] for fi in fanins])
    return 1.0 - count_ones(out ^ reference, num_vectors) / num_vectors


def propose_simplification(
    circuit: Circuit,
    values: ValueMap,
    gate: int,
    num_vectors: int,
    rng: Optional[random.Random] = None,
    min_agreement: float = 0.5,
) -> Optional[Simplification]:
    """Best in-place rewrite of ``gate`` by output agreement.

    Considers every same-arity function swap (at the gate's current
    drive) and, where a fallback exists, dropping one fan-in.  Returns
    ``None`` when nothing beats ``min_agreement`` (a coin flip).
    """
    if not circuit.is_logic(gate):
        return None
    function, drive = split_cell_name(circuit.cells[gate])
    fanins = circuit.fanins[gate]
    reference = values[gate]
    best: Optional[Tuple[float, Simplification]] = None

    def consider(score: float, simp: Simplification) -> None:
        nonlocal best
        if score < min_agreement:
            return
        if best is None or score > best[0]:
            best = (score, simp)

    family = _FUNCTION_FAMILIES.get(len(fanins), ())
    for cand in family:
        if cand == function:
            continue
        if FUNCTIONS[cand].complexity >= FUNCTIONS[function].complexity:
            continue  # only simplify toward cheaper cells
        score = _agreement(values, cand, fanins, reference, num_vectors)
        consider(score, Simplification(gate, cell_name(cand, drive)))

    fallback = _DROP_FALLBACK.get(function)
    if fallback is not None and len(fanins) >= 2:
        for drop_idx in range(len(fanins)):
            kept = tuple(
                fi for i, fi in enumerate(fanins) if i != drop_idx
            )
            if FUNCTIONS[fallback].arity != len(kept):
                continue
            score = _agreement(
                values, fallback, kept, reference, num_vectors
            )
            consider(
                score,
                Simplification(gate, cell_name(fallback, drive), kept),
            )
    return best[1] if best else None


def apply_simplification(circuit: Circuit, simp: Simplification) -> List[int]:
    """Apply in place; returns the changed gate (for incremental resim)."""
    expected_arity = FUNCTIONS[split_cell_name(simp.new_cell)[0]].arity
    new_fanins = (
        simp.new_fanins
        if simp.new_fanins is not None
        else circuit.fanins[simp.gate]
    )
    if len(new_fanins) != expected_arity:
        raise ValueError(f"arity mismatch applying {simp}")
    circuit.set_cell(simp.gate, simp.new_cell)
    circuit.set_fanins(simp.gate, new_fanins)
    return [simp.gate]


def simplified_copy(
    circuit: Circuit, simp: Simplification, name: Optional[str] = None
) -> Circuit:
    """Copy-and-apply convenience mirroring ``applied_copy`` for LACs.

    Like ``applied_copy``, the child carries provenance (the rewritten
    gate) so evaluation can resimulate only the gate's fan-out cone.
    """
    child = circuit.copy(name)
    base_version = child.version
    changed = apply_simplification(child, simp)
    # apply_simplification writes the cell and the fan-in tuple: 2 writes.
    child.extend_provenance(changed, base_version, 2)
    return child
