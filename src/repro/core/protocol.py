"""The optimizer protocol: ABC, streaming callbacks, serializable state.

Every method (DCGWO and all four baselines) implements the same small
surface so the flow, the :class:`~repro.session.Session` facade, and any
third-party plug-in interoperate:

* :class:`Optimizer` — construct with ``(ctx, error_bound, config)``,
  call :meth:`Optimizer.optimize`.  Subclasses implement only
  :meth:`Optimizer._init_state` (build the serializable loop state) and
  :meth:`Optimizer._step` (advance it by one iteration); the base class
  owns the driver loop, callback dispatch, pause/resume, and the result
  assembly, so every method gets checkpointing and streaming for free.
* :class:`OptimizerState` — everything the loop needs between
  iterations (population, archive, RNG, history).  It is deliberately
  plain data: pickling it, rebuilding the :class:`EvalContext` from the
  same seed, and calling ``optimize(state=...)`` resumes a run
  bit-identically (pinned by ``tests/test_session_api.py``).
* :class:`RunCallback` — observer of one run: ``on_run_start`` /
  ``on_iteration`` / ``on_run_end``, consumed by the CLI progress view
  and available to any embedding service.

Evaluation enters through two funnels: :meth:`Optimizer._evaluate` for
one candidate (cone-limited when provenance allows) and
:meth:`Optimizer._evaluate_generation` for a whole generation, which
shards the generation across a process pool when the config requests
``jobs > 1`` (:mod:`repro.core.parallel`), prefers the in-process
shared-topo-walk batch path (:func:`repro.core.batch.evaluate_batch`)
otherwise, and falls back to per-candidate incremental evaluation.
All paths are bit-identical to the full path.
"""

from __future__ import annotations

import random
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import (
    Any,
    ClassVar,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

from ..netlist import Circuit
from .batch import evaluate_batch
from .fitness import (
    CircuitEval,
    EvalContext,
    ParentEvals,
    evaluate,
    evaluate_incremental,
)
from .result import IterationStats, OptimizationResult


# ----------------------------------------------------------------------
# streaming callbacks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class IterationEvent:
    """One per-iteration progress event streamed to run callbacks.

    Attributes:
        method: the emitting optimizer's method name.
        iteration: 1-based iteration just completed.
        total_iterations: the run's iteration budget.
        stats: the history row the iteration appended.
        best: best error-feasible circuit archived so far (may be
            ``None`` early in a run under a tight constraint).
        elapsed_s: wall-clock seconds since ``optimize()`` was entered.
    """

    method: str
    iteration: int
    total_iterations: int
    stats: IterationStats
    best: Optional[CircuitEval]
    elapsed_s: float


class RunCallback:
    """Observer of one optimizer run; override any subset of hooks.

    Events arrive in a fixed order: exactly one :meth:`on_run_start`,
    then zero or more :meth:`on_iteration` with strictly increasing
    ``iteration``, then exactly one :meth:`on_run_end` — per
    ``optimize()`` call (a resumed run is a fresh event sequence).
    """

    def on_run_start(
        self, method: str, total_iterations: int, state: "OptimizerState"
    ) -> None:
        """Called once before the first iteration of this call."""

    def on_iteration(self, event: IterationEvent) -> None:
        """Called after every completed iteration."""

    def on_run_end(self, result: OptimizationResult) -> None:
        """Called once with the (possibly partial) result."""


class CallbackList(RunCallback):
    """Fan one run's events out to several callbacks, in order."""

    def __init__(self, callbacks: Iterable[Optional[RunCallback]]):
        self.callbacks: List[RunCallback] = [
            cb for cb in callbacks if cb is not None
        ]

    def on_run_start(self, method, total_iterations, state) -> None:
        for cb in self.callbacks:
            cb.on_run_start(method, total_iterations, state)

    def on_iteration(self, event: IterationEvent) -> None:
        for cb in self.callbacks:
            cb.on_iteration(event)

    def on_run_end(self, result: OptimizationResult) -> None:
        for cb in self.callbacks:
            cb.on_run_end(result)


#: What ``optimize(callbacks=...)`` accepts.
Callbacks = Union[RunCallback, Sequence[Optional[RunCallback]], None]


def as_callback(callbacks: Callbacks) -> RunCallback:
    """Normalize the ``callbacks`` argument to a single dispatcher."""
    if callbacks is None:
        return RunCallback()
    if isinstance(callbacks, RunCallback):
        return callbacks
    return CallbackList(list(callbacks))


# ----------------------------------------------------------------------
# serializable loop state
# ----------------------------------------------------------------------
@dataclass
class OptimizerState:
    """Snapshot of an optimizer loop between two iterations.

    Plain data by design: everything here pickles (circuits drop their
    caches and provenance on serialization and rebuild them lazily), so
    ``Session.checkpoint`` can persist a paused run and
    ``Session.resume`` can continue it bit-identically.

    Attributes:
        iteration: iterations completed so far (0 before the first).
        limit: the iteration budget (``imax`` / generations / rounds).
        evaluations: candidate evaluations spent so far.
        done: set by ``_step`` when the method converged early (greedy
            methods stop when no acceptable move remains).
        rng: the run's own ``random.Random`` (picklable, exact state).
        population: current population (greedy methods keep their
            current circuit in ``extra`` instead).
        best: best error-feasible evaluation archived anywhere so far.
        history: one :class:`IterationStats` row per iteration.
        extra: method-specific loop state (weights, current circuit...).
    """

    iteration: int = 0
    limit: int = 0
    evaluations: int = 0
    done: bool = False
    rng: Optional[random.Random] = None
    population: List[CircuitEval] = field(default_factory=list)
    best: Optional[CircuitEval] = None
    history: List[IterationStats] = field(default_factory=list)
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def exhausted(self) -> bool:
        """True once the loop cannot advance any further."""
        return self.done or self.iteration >= self.limit


# ----------------------------------------------------------------------
# the optimizer ABC
# ----------------------------------------------------------------------
class Optimizer(ABC):
    """Base class of every optimization method.

    Args:
        ctx: shared evaluation context built around the accurate circuit.
        error_bound: maximum error (ER or NMED, per ``ctx.error_mode``).
        config: method hyper-parameters (``config_cls`` instance).

    Subclasses set :attr:`method_name` / :attr:`config_cls` and
    implement :meth:`_init_state` and :meth:`_step`.  Registration with
    :func:`repro.registry.register_method` makes the method reachable
    from the flow, CLI, and :class:`~repro.session.Session` by name.
    """

    #: Paper column name; also the registry's canonical key.
    method_name: ClassVar[str] = "?"
    #: The dataclass this optimizer is configured with.
    config_cls: ClassVar[Optional[Type]] = None

    def __init__(
        self,
        ctx: EvalContext,
        error_bound: float,
        config: Optional[Any] = None,
    ):
        if config is None:
            if self.config_cls is None:
                raise TypeError(
                    f"{type(self).__name__} declares no config_cls; "
                    "pass a config explicitly"
                )
            config = self.config_cls()
        self.ctx = ctx
        self.error_bound = error_bound
        self.config = config
        self._evaluations = 0
        #: Cooperative-stop flag (see :meth:`request_stop`); checked at
        #: every iteration boundary of the driver loop.
        self._stop_requested = False
        #: The state of the most recent ``optimize()`` call; the session
        #: reads this back to checkpoint a paused run.
        self.last_state: Optional[OptimizerState] = None
        #: Circuits to fold into the initial population (warm starts;
        #: see ``Session.warm_start``).  Methods that build populations
        #: consume them in ``_init_state``; greedy methods ignore them.
        self.seed_circuits: List[Circuit] = []
        cache_dir = getattr(config, "cache_dir", None)
        if cache_dir and getattr(ctx, "lake", None) is None:
            # A config-level cache_dir attaches the evaluation lake to
            # the shared context, but never overrides a session-level
            # attachment (or an explicit cache=False).
            from ..lake import open_cache

            # lint: allow[R3] optimizer-construction time, no dispatcher yet
            ctx.lake = open_cache(cache_dir)

    # ------------------------------------------------------------------
    # evaluation funnels
    # ------------------------------------------------------------------
    def _evaluate(
        self, circuit: Circuit, parents: ParentEvals = None
    ) -> CircuitEval:
        """Evaluate one candidate, cone-limited when a parent is known.

        With ``use_incremental`` (the default) and a valid provenance
        record, only the changed gates' fan-out cones are resimulated
        and retimed; results are bit-identical to the full path.
        """
        self._evaluations += 1
        if getattr(self.config, "use_incremental", True):
            return evaluate_incremental(self.ctx, circuit, parents)
        return evaluate(self.ctx, circuit)

    def _evaluate_generation(
        self, items: Sequence[Tuple[Circuit, ParentEvals]]
    ) -> List[CircuitEval]:
        """Evaluate a whole candidate generation.

        The preferred entry point of the protocol: with ``jobs > 1``
        resolved from the config (or the ``REPRO_JOBS`` environment),
        the generation is sharded across the context's worker pool;
        otherwise, when the config enables it, it goes through the
        in-process shared-topo-walk batch evaluator; otherwise each
        candidate is evaluated individually (still incrementally when
        possible).  All paths are bit-identical.
        """
        cfg = self.config
        if (
            len(items) > 1
            and getattr(cfg, "use_parallel", True)
            # use_batch=False is an ablation pin to per-candidate
            # evaluation; the shard workers run the batch walk, so it
            # must disable the parallel route too.
            and getattr(cfg, "use_batch", True)
        ):
            from .parallel import get_dispatcher, resolve_jobs

            jobs = resolve_jobs(config=cfg)
            if jobs > 1:
                evals = get_dispatcher(self.ctx, jobs).evaluate_items(
                    items,
                    force_full=not getattr(cfg, "use_incremental", True),
                )
                self._evaluations += len(items)
                return evals
        if (
            len(items) > 1
            and getattr(cfg, "use_incremental", True)
            and getattr(cfg, "use_batch", True)
        ):
            evals = evaluate_batch(self.ctx, items)
            self._evaluations += len(items)
            return evals
        return [self._evaluate(c, p) for c, p in items]

    # ------------------------------------------------------------------
    # loop protocol (subclass responsibility)
    # ------------------------------------------------------------------
    @abstractmethod
    def _init_state(self) -> OptimizerState:
        """Build iteration-zero state (initial population/archive)."""

    @abstractmethod
    def _step(self, state: OptimizerState) -> Optional[IterationStats]:
        """Advance the loop by one iteration.

        Mutates ``state`` (population, best, history, iteration) and
        returns the history row it appended, or ``None`` when the
        method converged without producing one (``state.done`` set).
        """

    def _fallback_best(self, state: OptimizerState) -> CircuitEval:
        """Best-of-last-resort when no feasible candidate was archived.

        The accurate circuit itself (zero error, ratio 1.0) keeps
        downstream stages working; subclasses may override.
        """
        return self._evaluate(
            self.ctx.reference.copy(), self.ctx.reference_eval()
        )

    def _result_population(
        self, state: OptimizerState
    ) -> List[CircuitEval]:
        """What :class:`OptimizationResult` reports as the population."""
        return list(state.population)

    # ------------------------------------------------------------------
    # the shared driver
    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        """Ask a running :meth:`optimize` loop to pause cooperatively.

        Safe to call from any thread (or a signal handler): the flag is
        checked at the next iteration boundary, so the loop returns a
        partial result exactly as ``stop_after`` would — ``last_state``
        holds a consistent snapshot that checkpoints and resumes
        bit-identically.  This is what Ctrl-C in the CLI and run
        eviction in ``repro serve`` are built on.
        """
        self._stop_requested = True

    def start(self) -> OptimizerState:
        """Build (but do not run) iteration-zero state."""
        self._evaluations = 0
        state = self._init_state()
        state.evaluations = self._evaluations
        return state

    def optimize(
        self,
        callbacks: Callbacks = None,
        state: Optional[OptimizerState] = None,
        stop_after: Optional[int] = None,
    ) -> OptimizationResult:
        """Run (or resume) the loop, streaming per-iteration events.

        Args:
            callbacks: a :class:`RunCallback` (or sequence of them).
            state: resume from this snapshot instead of starting fresh.
            stop_after: pause once ``state.iteration`` reaches this
                absolute count; the returned result then has
                ``completed=False`` and :attr:`last_state` holds the
                snapshot to resume from.

        Returns:
            The archived best + final population + history.  Partial
            (paused) results carry ``completed=False`` and may have
            ``best=None`` when nothing feasible was found yet.
        """
        cb = as_callback(callbacks)
        self._stop_requested = False
        # lint: allow[R4] run-metadata wall time, never feeds evaluation
        begin = time.perf_counter()
        if state is None:
            state = self.start()
        self._evaluations = state.evaluations
        self.last_state = state
        cb.on_run_start(self.method_name, state.limit, state)
        while not state.exhausted:
            if stop_after is not None and state.iteration >= stop_after:
                break
            if self._stop_requested:
                break
            stats = self._step(state)
            state.evaluations = self._evaluations
            if stats is not None:
                cb.on_iteration(
                    IterationEvent(
                        method=self.method_name,
                        iteration=state.iteration,
                        total_iterations=state.limit,
                        stats=stats,
                        best=state.best,
                        # lint: allow[R4] run-metadata wall time only
                        elapsed_s=time.perf_counter() - begin,
                    )
                )
        completed = state.exhausted
        best = state.best
        if best is None and completed:
            best = self._fallback_best(state)
            state.evaluations = self._evaluations
            state.best = best
        result = OptimizationResult(
            method=self.method_name,
            best=best,
            population=self._result_population(state),
            history=list(state.history),
            evaluations=state.evaluations,
            # lint: allow[R4] run-metadata wall time only
            runtime_s=time.perf_counter() - begin,
            completed=completed,
        )
        cb.on_run_end(result)
        return result
