"""Multi-process sharded generation evaluation (the ShardDispatcher).

The ROADMAP's first scaling step: ``Session.compare`` and the
per-generation batch groups built by :mod:`repro.core.batch` are
embarrassingly parallel but, until this module, executed on one core.
:class:`ShardDispatcher` forks ``jobs`` long-lived worker processes and
dispatches provenance groups to them, with the one contract everything
in this codebase is pinned to: **parallel results are bit-identical to
serial results**, regardless of worker count or OS scheduling.

How determinism is preserved:

* **Workers own cloned contexts.**  Each worker rebuilds its own
  :class:`~repro.core.fitness.EvalContext` from the session's reference
  circuit, library and Monte-Carlo vector set — the same recipe
  ``Session.resume`` uses — so reference values, STA baselines and
  metric tails are bit-identical to the parent process's.
* **The partition is computed in the parent.**
  :func:`repro.core.batch.group_by_parent` decides which child is
  incrementally evaluable against which parent and which needs a full
  evaluation, exactly as the serial path does; workers never make
  path decisions of their own.
* **Parents travel once, children every generation.**  A provenance
  group is shipped as (parent key, children-with-changed-sets).  The
  first time a parent reaches a worker its full
  :class:`~repro.core.fitness.CircuitEval` rides along and is cached
  worker-side (the parent process mirrors the cache bookkeeping, so it
  knows which worker owns which parent); subsequent generations ship
  only the children.  Workers re-stamp each child's provenance against
  their cached parent copy and run the ordinary batch path — stacked
  value walk plus the stacked incremental timing frontier
  (:func:`repro.sta.update_timing_batch`) — the same code, the same
  floats.
* **Results merge by item index**, so completion order is irrelevant.

Evaluating each gate's value and timing is a pure function of circuit
structure + vectors + library, so a worker's output for an item equals
what the serial path would have produced for it (pinned by
``tests/test_parallel_eval.py``: batch equivalence under jobs=2/4/
jobs>children, stale-provenance fallbacks, mixed parent groups, and a
seeded DCGWO run-identity test).

Crash safety is a *recovery* layer, not just detection.  Because every
routing and caching decision lives in the parent, a worker is
disposable: when one dies (SIGKILL, OOM-kill), hangs past the per-reply
deadline (``REPRO_WORKER_TIMEOUT``; the straggler is SIGKILLed), or its
pipe breaks, the dispatcher respawns it with a fresh cache mirror and
re-plans the unmerged items — bounded retries with backoff
(``REPRO_WORKER_RETRIES``), then graceful degradation to serial
evaluation in the parent.  Since every path is bit-identical, recovery
may re-route freely without changing a single result bit.  Error
*replies* are classified instead: the first one is replayed once
against a respawned worker (with fault injection suppressed), and a
second error is deterministic — a poisoned cell library, a bug — so the
pool is torn down and the original exception re-raised, exactly the
PR-3 contract.  Workers are daemonic as a last-resort backstop, and
deterministic fault injection (:mod:`repro.faults`, sites
``worker.kill``/``worker.hang``/``worker.poison``) exercises every one
of these paths in the chaos CI job.

Job-count resolution (:func:`resolve_jobs`): an explicit ``jobs=``
argument wins, then the optimizer/flow config's ``jobs`` field, then
the ``REPRO_JOBS`` environment variable, else serial.  Inside a worker
the answer is always 1 — nested pools are never spawned.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
import traceback
import warnings
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait as connection_wait
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from .. import faults
from ..analysis.sanitize import TrackedLock, publish_array
from ..netlist import Circuit
from ..netlist.circuit import Provenance
from ..sim import ErrorMode, VectorSet
from ..sim.store import ValueStore, value_store_index
from ..sta import TimingReport
from .batch import BatchItem, evaluate_batch, group_by_parent
from .fitness import CircuitEval, DepthMode, EvalContext

#: Set in worker processes so :func:`resolve_jobs` never nests pools.
_IN_WORKER = False

#: Parent-eval cache entries kept per worker (FIFO eviction, mirrored
#: by the dispatcher so both sides agree on what is resident).
DEFAULT_CACHE_LIMIT = 128

#: Per-reply deadline for one eval dispatch (``REPRO_WORKER_TIMEOUT``
#: overrides; <= 0 disables).  Generous — a legitimate shard reply is
#: seconds — but finite, so a live-yet-wedged worker (SIGSTOP, a stuck
#: syscall) becomes a recoverable failure instead of a hung session.
DEFAULT_WORKER_TIMEOUT = 600.0

#: Per-reply deadline for one whole-method run (``Session.compare``
#: path; ``REPRO_METHOD_TIMEOUT`` overrides, <= 0 disables).  Method
#: runs are full optimization flows, so the ceiling is much higher.
DEFAULT_METHOD_TIMEOUT = 3600.0

#: Recovery attempts after the first failed dispatch before the
#: dispatcher degrades to serial evaluation (``REPRO_WORKER_RETRIES``).
DEFAULT_WORKER_RETRIES = 2


class WorkerCrashError(faults.TransientError):
    """The pool kept failing past its retry budget (transient class:
    a serve job hitting this may retry from its checkpoint)."""


class _ReplyTimeout(Exception):
    """Internal: a worker missed its per-reply deadline."""


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        warnings.warn(
            f"{name}={raw!r} is not a number; using {default}",
            RuntimeWarning,
            stacklevel=3,
        )
        return default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        warnings.warn(
            f"{name}={raw!r} is not an integer; using {default}",
            RuntimeWarning,
            stacklevel=3,
        )
        return default


def resolve_jobs(jobs: Optional[int] = None, config: Any = None) -> int:
    """Effective worker count: explicit arg > config ``jobs`` > env > 1.

    ``REPRO_JOBS`` provides the environment override the CI parallel
    job uses; inside a shard worker the answer is always 1 so a
    parallel ``compare`` never spawns pools-within-pools.
    """
    if _IN_WORKER:
        return 1
    if jobs is not None:
        return max(1, int(jobs))
    if config is not None:
        cfg_jobs = getattr(config, "jobs", 0) or 0
        if cfg_jobs:
            return max(1, int(cfg_jobs))
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            # Never silently lose parallelism: a typo'd REPRO_JOBS in a
            # CI matrix would otherwise quietly run everything serial.
            warnings.warn(
                f"REPRO_JOBS={env!r} is not an integer; "
                "falling back to serial evaluation",
                RuntimeWarning,
                stacklevel=2,
            )
            return 1
    return 1


def full_structure_key(circuit: Circuit) -> bytes:
    """Back-compat shim: see :meth:`Circuit.full_structure_key`.

    The digest moved onto :class:`~repro.netlist.Circuit` so the batch
    evaluator's singles dedup can use it without importing this module
    (which imports the batch evaluator).
    """
    return circuit.full_structure_key()


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
@dataclass
class _ContextSpec:
    """Everything a worker needs to rebuild the session's EvalContext.

    The context itself is never shipped: it is fully determined by
    (reference circuit, library, error mode, vectors, weights), and the
    rebuild in the worker reproduces every baseline bit-for-bit — the
    same invariant ``Session.resume`` relies on.  The vector words are
    shipped verbatim rather than re-drawn from a seed so contexts built
    around externally supplied vector sets parallelize too.
    """

    reference: Circuit
    library: Any
    error_mode: ErrorMode
    vector_words: np.ndarray
    num_vectors: int
    wd: float
    depth_mode: DepthMode
    #: Evaluation-lake directory workers write through to (``None``:
    #: unset — workers resolve ``REPRO_CACHE`` themselves, matching the
    #: parent's lazy resolution; ``cache_off`` ships an explicit
    #: ``cache=False`` so a disabled parent disables its workers too).
    cache_dir: Optional[str] = None
    cache_off: bool = False

    @classmethod
    def from_ctx(cls, ctx: EvalContext) -> "_ContextSpec":
        lake = getattr(ctx, "lake", None)
        return cls(
            reference=ctx.reference,
            library=ctx.library,
            error_mode=ctx.error_mode,
            vector_words=ctx.vectors.words,
            num_vectors=ctx.vectors.num_vectors,
            wd=ctx.wd,
            depth_mode=ctx.depth_mode,
            cache_dir=lake.path if lake else None,
            cache_off=lake is False,
        )

    def build(self) -> EvalContext:
        ctx = EvalContext.build(
            self.reference,
            self.library,
            self.error_mode,
            vectors=VectorSet(self.vector_words, self.num_vectors),
            wd=self.wd,
            depth_mode=self.depth_mode,
        )
        if self.cache_off:
            # lint: allow[R3] worker-local context built before serving
            ctx.lake = False
        elif self.cache_dir:
            from ..lake import open_cache

            # lint: allow[R3] worker-local context built before serving
            ctx.lake = open_cache(self.cache_dir)
        return ctx


# A CircuitEval's ``values`` are a dense SoA matrix laid out by the
# same sorted-gid row numbering as the timing arrays, so evals cross
# the pipe with that matrix shipped raw — no per-gate keys, no dict
# repacking — and the row index is rebuilt memoized from the circuit on
# the receiving side (``keys is None`` marks the dense layout).  Legacy
# dict value maps (the diverged-fallback path) still ship as a key
# array plus stacked rows, exactly as PR 3 packed them.  Timing rides
# the same way: the report's SoA arrays ship raw (five numpy arrays
# instead of five per-gate dicts).
_PackedEval = Tuple[
    Circuit,  # shares identity with report.circuit through one pickle
    Tuple,  # TimingReport.pack(): five SoA arrays + structure version
    Optional[np.ndarray],  # value-map keys (int64); None = dense store
    np.ndarray,  # value matrix: (index.n + 2, W) dense or stacked rows
    float,  # depth
    float,  # area
    float,  # error
    List[float],  # per_po_error
    float,  # fd
    float,  # fa
    float,  # fitness
    int,  # circuit_version
]


def _pack_eval(ev: CircuitEval) -> _PackedEval:
    values = ev.values
    if isinstance(values, ValueStore):
        keys: Optional[np.ndarray] = None
        matrix = values.matrix
    else:
        keys = np.fromiter(values.keys(), dtype=np.int64, count=len(values))
        matrix = (
            np.stack(list(values.values()))
            if values
            else np.empty((0, 0), dtype=np.uint64)
        )
    return (
        ev.circuit,
        ev.report.pack(),
        keys,
        matrix,
        ev.depth,
        ev.area,
        ev.error,
        ev.per_po_error,
        ev.fd,
        ev.fa,
        ev.fitness,
        ev.circuit_version,
    )


def _unpack_eval(packed: _PackedEval) -> CircuitEval:
    (
        circuit,
        report_payload,
        keys,
        matrix,
        depth,
        area,
        error,
        per_po,
        fd,
        fa,
        fitness,
        version,
    ) = packed
    if keys is None:
        # Dense store: rebuild the (memoized) row index from the
        # circuit that travelled alongside — same sorted-gid numbering
        # the sender laid the matrix out by.  The matrix arrives
        # writable from the pipe; republish it read-only — a shipped
        # eval is as published as the local one it mirrors.
        values: Any = ValueStore(
            value_store_index(circuit), publish_array(matrix)
        )
    else:
        values = {int(k): matrix[i] for i, k in enumerate(keys)}
    return CircuitEval(
        circuit=circuit,
        report=TimingReport.unpack(circuit, report_payload),
        values=values,
        depth=depth,
        area=area,
        error=error,
        per_po_error=per_po,
        fd=fd,
        fa=fa,
        fitness=fitness,
        circuit_version=version,
    )


def _reattach_provenance(
    circuit: Circuit, parent: CircuitEval, changed: FrozenSet[int]
) -> None:
    """Re-stamp a shipped child against the worker's parent copy.

    Pickling deliberately drops provenance (it is only meaningful
    relative to an in-memory parent object); the dispatcher shipped the
    ``changed`` set alongside, and the worker's cached parent is
    structurally identical to the original, so the re-stamped record
    drives exactly the cone walk the serial path would have run.
    """
    circuit.provenance = Provenance(
        parent.circuit, parent.circuit_version, changed
    )
    circuit._prov_version = circuit._version


def _worker_eval(
    ctx: EvalContext,
    ref_key: bytes,
    cache: "Dict[bytes, CircuitEval]",
    evicts: Sequence[bytes],
    groups: Sequence[Tuple[bytes, Optional["_PackedEval"], List]],
    singles: Sequence[Tuple[int, Circuit, bytes]],
) -> List[Tuple[int, "_PackedEval"]]:
    """Evaluate one shard: provenance groups + full-eval singles."""
    for key in evicts:
        cache.pop(key, None)
    results: List[Tuple[int, _PackedEval]] = []
    for key, payload, members in groups:
        if payload is not None:
            parent = _unpack_eval(payload)
            cache[key] = parent
        elif key == ref_key:
            parent = ctx.reference_eval()
        else:
            parent = cache.get(key)
            if parent is None:
                raise RuntimeError(
                    "shard cache desync: dispatcher referenced a parent "
                    "this worker does not hold"
                )
        items: List[BatchItem] = []
        for _, circuit, changed, _ in members:
            _reattach_provenance(circuit, parent, changed)
            items.append((circuit, parent))
        evals = evaluate_batch(ctx, items)
        for (index, _, _, child_key), ev in zip(members, evals):
            if child_key is not None:
                cache[child_key] = ev
            results.append((index, _pack_eval(ev)))
    if singles:
        # Through the batch evaluator rather than a bare `evaluate`
        # loop so the shard consults/populates the evaluation lake and
        # shares duplicate-key work exactly like the serial path
        # (pickling dropped any provenance, so every item stays a
        # full-evaluation single — bit-identical either way).
        evals = evaluate_batch(
            ctx, [(circuit, None) for _, circuit, _ in singles]
        )
        for (index, _, child_key), ev in zip(singles, evals):
            if child_key is not None:
                cache[child_key] = ev
            results.append((index, _pack_eval(ev)))
    lake = getattr(ctx, "lake", None)
    if lake:
        # Workers exit through ``os._exit`` (no atexit), so lake hit/put
        # counters are flushed per shard — one appended delta line, and
        # only when the counters actually moved.
        lake.flush_stats()
    return results


def _apply_worker_fault(fault: Any) -> None:
    """Execute a parent-shipped fault instruction (chaos testing).

    The *parent* evaluates the fault schedule at send time and ships
    the verdict, so a respawned worker never re-reads counters and
    re-kills itself forever; the worker just acts it out.
    """
    if fault is None:
        return
    if fault == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif fault == "poison":
        raise faults.InjectedFault("injected worker error reply")
    elif isinstance(fault, tuple) and fault[0] == "hang":
        # Sleep far past the parent's reply deadline; the parent
        # SIGKILLs the straggler, so the sleep never runs to term.
        time.sleep(float(fault[1]))
    else:  # pragma: no cover - schedule/worker version skew
        raise RuntimeError(f"unknown fault instruction {fault!r}")


def _worker_run(ctx: EvalContext, method: str, flow_config: Any) -> Any:
    """Run one whole method (optimizer + post-opt) against the worker ctx."""
    from ..session import Session

    session = Session(
        ctx.reference, config=flow_config, library=ctx.library, ctx=ctx
    )
    return session.run(method)


def _worker_main(conn: Connection, spec: _ContextSpec) -> None:
    """Worker loop: build the cloned context lazily, serve shard messages.

    The context build is *not* done eagerly at process start: a failing
    build (e.g. a poisoned cell library) must surface as an ordinary
    error reply to the first message — raising out of the loop would
    leave the dispatcher waiting on a dead pipe.
    """
    global _IN_WORKER
    _IN_WORKER = True
    ctx: Optional[EvalContext] = None
    ref_key: Optional[bytes] = None
    init_error: Optional[BaseException] = None
    cache: Dict[bytes, CircuitEval] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if msg is None or msg[0] == "stop":
            break
        try:
            if ctx is None and init_error is None:
                try:
                    ctx = spec.build()
                    ref_key = full_structure_key(ctx.reference)
                except BaseException as exc:  # noqa: BLE001 - report, don't die
                    init_error = exc
            if init_error is not None:
                raise init_error
            kind = msg[0]
            if kind == "ping":
                result: Any = None
            elif kind == "eval":
                _apply_worker_fault(msg[4] if len(msg) > 4 else None)
                result = _worker_eval(ctx, ref_key, cache, *msg[1:4])
            elif kind == "run":
                _apply_worker_fault(msg[3] if len(msg) > 3 else None)
                result = _worker_run(ctx, *msg[1:3])
            else:
                raise RuntimeError(f"unknown shard message {kind!r}")
            reply: Tuple = ("ok", result)
        except BaseException as exc:  # noqa: BLE001 - marshal to parent
            reply = ("err", (exc, traceback.format_exc()))
        try:
            conn.send(reply)
        except Exception as send_exc:  # unpicklable result/exception
            try:
                conn.send(
                    (
                        "err",
                        (
                            RuntimeError(
                                "worker reply could not be serialized: "
                                f"{send_exc!r}"
                            ),
                            traceback.format_exc(),
                        ),
                    )
                )
            except Exception:
                break


# ----------------------------------------------------------------------
# dispatcher (parent side)
# ----------------------------------------------------------------------
@dataclass
class _WorkerPlan:
    """One worker's share of a dispatch, built deterministically."""

    evicts: List[bytes] = field(default_factory=list)
    groups: List[Tuple[bytes, Optional[_PackedEval], List]] = field(
        default_factory=list
    )
    singles: List[Tuple[int, Circuit, bytes]] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not (self.groups or self.singles)


def _start_method() -> str:
    """Prefer fork (cheap, inherits the interpreter) when available."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class ShardDispatcher:
    """A pool of evaluation workers with deterministic shard routing.

    Args:
        ctx: the evaluation context whose workload is being sharded;
            each worker rebuilds its own clone from the same inputs.
        jobs: number of worker processes (>= 1; a 1-worker dispatcher
            is legal but pointless — callers gate on ``jobs > 1``).
        cache_limit: parent-eval cache entries per worker.  The
            dispatcher mirrors each worker's FIFO bookkeeping, so both
            sides always agree on which parents are resident.
        worker_timeout: per-reply deadline in seconds for eval/ping
            dispatches (default ``REPRO_WORKER_TIMEOUT``, else
            :data:`DEFAULT_WORKER_TIMEOUT`; <= 0 disables).
        method_timeout: per-reply deadline for whole-method runs
            (default ``REPRO_METHOD_TIMEOUT``).
        retries: recovery attempts after a failed dispatch before
            degrading to serial (default ``REPRO_WORKER_RETRIES``).

    The dispatcher is deliberately single-brained: every routing,
    caching and eviction decision is made in the parent process and
    shipped to workers as explicit instructions, which is what makes a
    run's dispatch sequence — and therefore its results — a pure
    function of the item stream, independent of scheduling.  That same
    property makes workers disposable: respawn-and-re-plan after any
    death/hang cannot change a result, only its routing.  Recovery
    counters live in :attr:`stats` (``respawns``/``retries``/
    ``timeouts``/``replays``/``serial_fallbacks``) for the chaos CI
    job's summary.
    """

    def __init__(
        self,
        ctx: EvalContext,
        jobs: int,
        cache_limit: int = DEFAULT_CACHE_LIMIT,
        worker_timeout: Optional[float] = None,
        method_timeout: Optional[float] = None,
        retries: Optional[int] = None,
        backoff: float = 0.05,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache_limit = max(cache_limit, 8)
        self.worker_timeout = (
            worker_timeout
            if worker_timeout is not None
            else _env_float("REPRO_WORKER_TIMEOUT", DEFAULT_WORKER_TIMEOUT)
        )
        self.method_timeout = (
            method_timeout
            if method_timeout is not None
            else _env_float("REPRO_METHOD_TIMEOUT", DEFAULT_METHOD_TIMEOUT)
        )
        self.retries = (
            retries
            if retries is not None
            else max(0, _env_int("REPRO_WORKER_RETRIES", DEFAULT_WORKER_RETRIES))
        )
        self.backoff = backoff
        #: Recovery counters (cumulative over the dispatcher's life).
        self.stats: Dict[str, int] = {
            "respawns": 0,
            "retries": 0,
            "timeouts": 0,
            "replays": 0,
            "serial_fallbacks": 0,
        }
        self._closed = False
        #: Serializes pool access: the pipes, routing tables and cache
        #: mirrors assume one dispatch in flight, so concurrent callers
        #: (serve-mode jobs sharing a pool, a signal-driven close racing
        #: an evaluation) queue here instead of interleaving messages.
        #: Reentrant because the error path closes from inside a
        #: dispatch.
        self._lock = TrackedLock("ShardDispatcher._lock", reentrant=True)
        self._ref_key = full_structure_key(ctx.reference)
        #: Mirror of each worker's cache keys, in insertion (FIFO) order.
        self._known: List["OrderedDict[bytes, None]"] = [
            OrderedDict() for _ in range(jobs)
        ]
        self._rr = 0  # round-robin counter for full-eval singles
        #: Kept for serial-fallback evaluation and worker respawns.
        self._ctx = ctx
        self._spec = _ContextSpec.from_ctx(ctx)
        self._mp = multiprocessing.get_context(_start_method())
        self._workers: List[Tuple[Any, Connection]] = []
        for i in range(jobs):
            self._workers.append(self._spawn(i))

    def _spawn(self, index: int) -> Tuple[Any, Connection]:
        parent_conn, child_conn = self._mp.Pipe()
        proc = self._mp.Process(
            target=_worker_main,
            args=(child_conn, self._spec),
            daemon=True,
            name=f"repro-shard-{index}",
        )
        proc.start()
        child_conn.close()
        return proc, parent_conn

    def _respawn(self, worker: int) -> None:
        """Replace a failed worker with a fresh process + empty mirror.

        SIGKILL (not SIGTERM) so even a SIGSTOP'd straggler dies, and
        the cache mirror is reset so the planner re-ships any parent
        the dead worker was supposed to hold — the parent-side
        bookkeeping *is* the replay recipe.
        """
        proc, conn = self._workers[worker]
        try:
            conn.close()
        except Exception:
            pass
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=5.0)
        self._known[worker] = OrderedDict()
        self._workers[worker] = self._spawn(worker)
        self.stats["respawns"] += 1

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def warmup(self) -> None:
        """Force every worker to build its context now (optional).

        Useful before timed regions (the runtime-scaling bench measures
        steady-state throughput) and to surface context-build errors
        eagerly; :meth:`evaluate_items` works without it.  Supervised
        like any dispatch: dead/hung workers are respawned and
        re-pinged, a repeated error reply is deterministic and raises.
        """
        with self._lock:
            pending = list(range(self.jobs))
            err_seen = False
            for attempt in range(self.retries + 2):
                if attempt:
                    self.stats["retries"] += 1
                    time.sleep(self.backoff * attempt)
                failed: List[int] = []
                active: List[int] = []
                for w in pending:
                    if self._send(w, ("ping",)):
                        active.append(w)
                    else:
                        failed.append(w)
                error: Optional[Tuple[BaseException, str]] = None
                for w in active:
                    kind, payload = self._collect_one(
                        w, self.worker_timeout
                    )
                    if kind == "err":
                        error = payload
                        failed.append(w)
                    elif kind in ("dead", "timeout"):
                        failed.append(w)
                if error is not None:
                    if err_seen:
                        self._raise_worker_error(*error)
                    err_seen = True
                    self.stats["replays"] += 1
                for w in failed:
                    self._respawn(w)
                pending = sorted(failed)
                if not pending:
                    return
            self.close(force=True)
            raise WorkerCrashError(
                f"shard pool failed to warm up after {self.retries + 1} "
                "attempts"
            )

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def _register(
        self,
        worker: int,
        key: bytes,
        plan: _WorkerPlan,
        pinned: set,
    ) -> None:
        """Record that ``worker`` will hold ``key`` after this dispatch.

        FIFO-evicts the oldest unpinned entries beyond ``cache_limit``;
        keys touched by the current dispatch are pinned so an eviction
        can never invalidate a group scheduled moments earlier.
        """
        known = self._known[worker]
        if key in known:
            pinned.add(key)
            return
        known[key] = None
        pinned.add(key)
        while len(known) > self.cache_limit:
            victim = next(
                (old for old in known if old not in pinned), None
            )
            if victim is None:
                break
            del known[victim]
            plan.evicts.append(victim)

    def _owner_of(self, key: bytes) -> Optional[int]:
        for w in range(self.jobs):
            if key in self._known[w]:
                return w
        return None

    def _plan(
        self, items: Sequence[BatchItem], force_full: bool
    ) -> List[_WorkerPlan]:
        """Deterministically partition a generation into worker shards."""
        if force_full:
            groups: List = []
            singles: List[Tuple[int, Circuit]] = [
                (i, circuit) for i, (circuit, _) in enumerate(items)
            ]
        else:
            groups, singles = group_by_parent(items)
        plans = [_WorkerPlan() for _ in range(self.jobs)]
        pinned: set = set()
        for parent, members in groups:
            key = full_structure_key(parent.circuit)
            packed = [
                (i, circuit, changed, full_structure_key(circuit))
                for i, circuit, changed in members
            ]
            if key == self._ref_key:
                # Every worker rebuilds the reference eval locally, so
                # the (large) initial-population group splits for free.
                chunk = -(-len(packed) // self.jobs)  # ceil div
                for w in range(self.jobs):
                    part = packed[w * chunk : (w + 1) * chunk]
                    if not part:
                        continue
                    plans[w].groups.append((key, None, part))
                    for _, _, _, child_key in part:
                        self._register(w, child_key, plans[w], pinned)
                continue
            owner = self._owner_of(key)
            payload: Optional[_PackedEval] = None
            if owner is None:
                # First sighting: route by key hash, ship the parent.
                owner = int.from_bytes(key[:8], "big") % self.jobs
                payload = _pack_eval(parent)
                self._register(owner, key, plans[owner], pinned)
            else:
                pinned.add(key)
            plans[owner].groups.append((key, payload, packed))
            for _, _, _, child_key in packed:
                self._register(owner, child_key, plans[owner], pinned)
        for i, circuit in singles:
            w = self._rr % self.jobs
            self._rr += 1
            child_key = full_structure_key(circuit)
            plans[w].singles.append((i, circuit, child_key))
            self._register(w, child_key, plans[w], pinned)
        return plans

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _send(self, worker: int, msg: Tuple) -> bool:
        """Best-effort send; ``False`` means the worker's pipe is gone
        (the caller treats that exactly like a death and respawns)."""
        if self._closed:
            raise RuntimeError("dispatcher is closed")
        try:
            self._workers[worker][1].send(msg)
            return True
        except (OSError, ValueError):
            return False

    def _recv_reply(self, worker: int, timeout: float) -> Tuple[str, Any]:
        """Receive one reply, watching process, pipe, and the clock.

        A worker that dies abruptly may never close our end of the pipe
        (sibling workers forked later hold inherited copies of its write
        fd), so a bare ``recv`` could block forever; polling with a
        liveness check turns that into a clean :class:`EOFError`.  A
        worker that is alive but wedged (SIGSTOP, a stuck syscall, an
        injected hang) trips the per-reply deadline instead and raises
        :class:`_ReplyTimeout` — the caller kills and replaces it.
        """
        proc, conn = self._workers[worker]
        deadline = (
            # lint: allow[R4] supervision wall clock; never feeds results
            time.monotonic() + timeout if timeout and timeout > 0 else None
        )
        while True:
            if conn.poll(0.05):
                return conn.recv()
            if not proc.is_alive():
                if conn.poll(0.05):  # drain a reply racing the exit
                    return conn.recv()
                raise EOFError(f"worker exited with {proc.exitcode!r}")
            # lint: allow[R4] supervision wall clock; never feeds results
            if deadline is not None and time.monotonic() > deadline:
                raise _ReplyTimeout(
                    f"worker {worker} missed the {timeout:.1f}s reply "
                    "deadline"
                )

    def _collect_one(self, worker: int, timeout: float) -> Tuple[str, Any]:
        """One worker's outcome: ``("ok"|"err"|"dead"|"timeout", ...)``.

        A straggler that trips the deadline is SIGKILLed on the spot —
        from here on it is just another dead worker to respawn.
        """
        try:
            return self._recv_reply(worker, timeout)
        except _ReplyTimeout as exc:
            self.stats["timeouts"] += 1
            proc = self._workers[worker][0]
            if proc.is_alive():
                proc.kill()
            return "timeout", exc
        except (EOFError, OSError) as exc:
            return "dead", exc

    def _raise_worker_error(self, exc: BaseException, tb: str) -> None:
        """Deterministic worker error: tear the pool down, re-raise."""
        self.close(force=True)
        if tb and hasattr(exc, "add_note"):
            exc.add_note(
                "raised in a shard worker; worker traceback:\n" + tb
            )
        raise exc

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------
    def _eval_fault(self, worker: int, suppress: bool) -> Any:
        """Fault instruction for one eval send (``None`` when disarmed).

        Evaluated parent-side so the hit counters have a single
        authority; ``suppress`` turns injection off for diagnostic
        replays (an injected kill must not mask the question "was that
        error reply deterministic?").
        """
        if suppress:
            return None
        scope = str(worker)
        if faults.should_inject("worker.kill", scope):
            return "kill"
        if faults.should_inject("worker.hang", scope):
            hang_s = (
                max(1.0, 4.0 * self.worker_timeout)
                if self.worker_timeout > 0
                else 600.0
            )
            return ("hang", hang_s)
        if faults.should_inject("worker.poison", scope):
            return "poison"
        return None

    def evaluate_items(
        self, items: Sequence[BatchItem], force_full: bool = False
    ) -> List[CircuitEval]:
        """Evaluate a generation across the pool; bit-identical to serial.

        ``force_full`` mirrors ``use_incremental=False``: every item is
        fully evaluated (still sharded), matching what the serial path
        would have computed under that toggle.

        Self-healing: workers that die, hang past the reply deadline,
        or lose their pipe are respawned and the unmerged items
        re-planned (results already merged from healthy workers are
        kept — merging is by item index, so routing changes are
        invisible).  After ``retries`` failed recovery rounds the
        remaining items are evaluated serially in the parent.  A worker
        *error reply* is replayed once with fault injection suppressed;
        a second error is deterministic and re-raises after tearing the
        pool down.
        """
        if not items:
            return []
        with self._lock:
            out: List[Optional[CircuitEval]] = [None] * len(items)
            pending = list(range(len(items)))
            err_seen = False
            attempt = 0
            while pending:
                if attempt > self.retries:
                    self._serial_fallback(items, pending, force_full, out)
                    break
                if attempt:
                    self.stats["retries"] += 1
                    time.sleep(self.backoff * attempt)
                sub = [items[i] for i in pending]
                plans = self._plan(sub, force_full)
                active: List[int] = []
                failed: List[int] = []
                for w, plan in enumerate(plans):
                    if plan.empty:
                        continue
                    msg = (
                        "eval",
                        plan.evicts,
                        plan.groups,
                        plan.singles,
                        self._eval_fault(w, suppress=err_seen),
                    )
                    if self._send(w, msg):
                        active.append(w)
                    else:
                        failed.append(w)
                error: Optional[Tuple[BaseException, str]] = None
                done: set = set()
                for w in active:
                    kind, payload = self._collect_one(
                        w, self.worker_timeout
                    )
                    if kind == "ok":
                        for sub_index, packed in payload:
                            out[pending[sub_index]] = _unpack_eval(packed)
                            done.add(sub_index)
                    elif kind == "err":
                        error = payload
                        failed.append(w)
                    else:  # dead / timeout
                        failed.append(w)
                if error is not None:
                    if err_seen:
                        # The replay (injection-free) failed too: this
                        # error is deterministic, not environmental.
                        self._raise_worker_error(*error)
                    err_seen = True
                    self.stats["replays"] += 1
                for w in sorted(set(failed)):
                    self._respawn(w)
                pending = [
                    index
                    for sub_index, index in enumerate(pending)
                    if sub_index not in done
                ]
                attempt += 1
        return out  # type: ignore[return-value]

    def _serial_fallback(
        self,
        items: Sequence[BatchItem],
        pending: Sequence[int],
        force_full: bool,
        out: List[Optional[CircuitEval]],
    ) -> None:
        """Last resort: evaluate the stubborn items in the parent.

        The serial batch path is the definition of correctness here, so
        degraded results are still bit-identical — the pool only ever
        buys wall-clock time, never different answers.
        """
        self.stats["serial_fallbacks"] += 1
        warnings.warn(
            f"shard pool kept failing after {self.retries} recovery "
            f"attempts; evaluating {len(pending)} items serially in "
            "the parent",
            RuntimeWarning,
            stacklevel=3,
        )
        sub: List[BatchItem] = [items[i] for i in pending]
        if force_full:
            sub = [(circuit, None) for circuit, _ in sub]
        evals = evaluate_batch(self._ctx, sub)
        for index, ev in zip(pending, evals):
            out[index] = ev

    def run_methods(
        self, methods: Sequence[str], flow_config: Any
    ) -> Dict[str, Any]:
        """Run whole methods concurrently (``Session.compare`` backend).

        Each method's full flow (optimizer + post-optimization) runs in
        one worker against that worker's cloned context; methods beyond
        the pool size queue up and start as workers free up.  Results
        come back keyed and are returned in the requested method order.
        Individual runs are seeded and independent, so concurrency —
        and recovery re-dispatch after a worker death or a missed
        ``method_timeout`` deadline — cannot change any result.  A
        method whose worker keeps dying past the retry budget raises
        :class:`WorkerCrashError` (there is no serial fallback here: a
        method run *is* a serial run, just elsewhere); an error reply
        is replayed once and a second error re-raises the original.
        """
        with self._lock:
            pending = deque(methods)
            # worker -> (method, dispatch time); monotonic only feeds
            # the supervision deadline, never a result.
            inflight: Dict[int, Tuple[str, float]] = {}
            results: Dict[str, Any] = {}
            death_counts: Dict[str, int] = {m: 0 for m in methods}
            err_counts: Dict[str, int] = {m: 0 for m in methods}

            def fail_method(worker: int, method: str) -> None:
                self._respawn(worker)
                death_counts[method] += 1
                if death_counts[method] > self.retries:
                    self.close(force=True)
                    raise WorkerCrashError(
                        f"parallel worker running {method!r} kept "
                        f"failing after {self.retries} retries"
                    )
                self.stats["retries"] += 1
                pending.appendleft(method)

            while inflight or pending:
                for w in range(self.jobs):
                    if not pending:
                        break
                    if w in inflight:
                        continue
                    method = pending.popleft()
                    fault = (
                        None
                        if err_counts[method]
                        else self._run_fault(w)
                    )
                    if self._send(w, ("run", method, flow_config, fault)):
                        # lint: allow[R4] supervision deadline bookkeeping
                        inflight[w] = (method, time.monotonic())
                    else:
                        fail_method(w, method)
                if not inflight:
                    continue
                conn_to_worker = {
                    self._workers[w][1]: w for w in inflight
                }
                ready = connection_wait(
                    list(conn_to_worker), timeout=0.1
                )
                if not ready:
                    # No data: check liveness and the method deadline
                    # (a dead worker's pipe may be held open by
                    # siblings; a SIGSTOP'd one never reaches EOF).
                    # lint: allow[R4] supervision deadline bookkeeping
                    now = time.monotonic()
                    for w in list(inflight):
                        proc, conn = self._workers[w]
                        method, started = inflight[w]
                        if (
                            self.method_timeout > 0
                            and now - started > self.method_timeout
                            and proc.is_alive()
                        ):
                            self.stats["timeouts"] += 1
                            proc.kill()
                        if not proc.is_alive() and not conn.poll(0):
                            inflight.pop(w)
                            fail_method(w, method)
                    continue
                for conn in ready:
                    w = conn_to_worker[conn]
                    method, _ = inflight.pop(w)
                    try:
                        kind, payload = conn.recv()
                    except (EOFError, OSError):
                        fail_method(w, method)
                        continue
                    if kind == "err":
                        if err_counts[method]:
                            self._raise_worker_error(*payload)
                        err_counts[method] = 1
                        self.stats["replays"] += 1
                        self._respawn(w)
                        pending.appendleft(method)
                        continue
                    results[method] = payload
            return {m: results[m] for m in methods}

    def _run_fault(self, worker: int) -> Any:
        """Fault instruction for one method-run send (kill/poison only:
        a hang would stall CI for the whole method deadline)."""
        scope = str(worker)
        if faults.should_inject("worker.kill", scope):
            return "kill"
        if faults.should_inject("worker.poison", scope):
            return "poison"
        return None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, force: bool = False) -> None:
        """Shut the pool down; idempotent.

        Graceful close asks workers to exit and joins them; ``force``
        (the error path) skips the goodbye and terminates stragglers so
        a poisoned pool can never leave hung processes behind.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for _, conn in self._workers:
                if not force:
                    try:
                        conn.send(("stop",))
                    except Exception:
                        pass
                try:
                    conn.close()
                except Exception:
                    pass
            for proc, _ in self._workers:
                proc.join(timeout=0.2 if force else 2.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=2.0)
                if proc.is_alive():
                    # SIGTERM is ignorable (and undeliverable to a
                    # SIGSTOP'd process); SIGKILL is not.
                    proc.kill()
                    proc.join(timeout=2.0)

    def __enter__(self) -> "ShardDispatcher":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            self.close(force=True)
        except Exception:
            pass


#: Guards the per-context dispatcher slot: two threads resolving
#: ``jobs > 1`` on one context must share one pool, not fork two.
_DISPATCHER_LOCK = TrackedLock("parallel._DISPATCHER_LOCK")


def get_dispatcher(ctx: EvalContext, jobs: int) -> ShardDispatcher:
    """The context's dispatcher, (re)built when absent, closed or resized.

    The dispatcher lives on the :class:`EvalContext` so every consumer
    of one context — optimizer generations, ``Session.evaluate_batch``,
    ``Session.compare`` — shares one warm pool, and the worker-side
    parent caches stay hot across generations.  Thread-safe: concurrent
    callers get the same pool, and each dispatch serializes on the
    dispatcher's own lock.
    """
    with _DISPATCHER_LOCK:
        existing = getattr(ctx, "_dispatcher", None)
        if (
            existing is not None
            and not existing.closed
            and existing.jobs == jobs
        ):
            return existing
        if existing is not None:
            existing.close()
        dispatcher = ShardDispatcher(ctx, jobs)
        ctx._dispatcher = dispatcher
        return dispatcher


def close_dispatcher(ctx: EvalContext) -> None:
    """Close and detach the context's dispatcher, if any."""
    with _DISPATCHER_LOCK:
        existing = getattr(ctx, "_dispatcher", None)
        if existing is not None:
            existing.close()
            ctx._dispatcher = None
