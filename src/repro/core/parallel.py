"""Multi-process sharded generation evaluation (the ShardDispatcher).

The ROADMAP's first scaling step: ``Session.compare`` and the
per-generation batch groups built by :mod:`repro.core.batch` are
embarrassingly parallel but, until this module, executed on one core.
:class:`ShardDispatcher` forks ``jobs`` long-lived worker processes and
dispatches provenance groups to them, with the one contract everything
in this codebase is pinned to: **parallel results are bit-identical to
serial results**, regardless of worker count or OS scheduling.

How determinism is preserved:

* **Workers own cloned contexts.**  Each worker rebuilds its own
  :class:`~repro.core.fitness.EvalContext` from the session's reference
  circuit, library and Monte-Carlo vector set — the same recipe
  ``Session.resume`` uses — so reference values, STA baselines and
  metric tails are bit-identical to the parent process's.
* **The partition is computed in the parent.**
  :func:`repro.core.batch.group_by_parent` decides which child is
  incrementally evaluable against which parent and which needs a full
  evaluation, exactly as the serial path does; workers never make
  path decisions of their own.
* **Parents travel once, children every generation.**  A provenance
  group is shipped as (parent key, children-with-changed-sets).  The
  first time a parent reaches a worker its full
  :class:`~repro.core.fitness.CircuitEval` rides along and is cached
  worker-side (the parent process mirrors the cache bookkeeping, so it
  knows which worker owns which parent); subsequent generations ship
  only the children.  Workers re-stamp each child's provenance against
  their cached parent copy and run the ordinary batch path — stacked
  value walk plus the stacked incremental timing frontier
  (:func:`repro.sta.update_timing_batch`) — the same code, the same
  floats.
* **Results merge by item index**, so completion order is irrelevant.

Evaluating each gate's value and timing is a pure function of circuit
structure + vectors + library, so a worker's output for an item equals
what the serial path would have produced for it (pinned by
``tests/test_parallel_eval.py``: batch equivalence under jobs=2/4/
jobs>children, stale-provenance fallbacks, mixed parent groups, and a
seeded DCGWO run-identity test).

Crash safety: a worker that raises — a poisoned cell library, a bug in
an evaluation path — reports the pickled exception back; the dispatcher
then tears the whole pool down (no hung processes) and re-raises the
original exception in the caller, so ``Session.run`` surfaces it like
any serial error.  Workers are daemonic as a last-resort backstop.

Job-count resolution (:func:`resolve_jobs`): an explicit ``jobs=``
argument wins, then the optimizer/flow config's ``jobs`` field, then
the ``REPRO_JOBS`` environment variable, else serial.  Inside a worker
the answer is always 1 — nested pools are never spawned.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import traceback
import warnings
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait as connection_wait
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..analysis.sanitize import TrackedLock, publish_array
from ..netlist import Circuit
from ..netlist.circuit import Provenance
from ..sim import ErrorMode, VectorSet
from ..sim.store import ValueStore, value_store_index
from ..sta import TimingReport
from .batch import BatchItem, evaluate_batch, group_by_parent
from .fitness import CircuitEval, DepthMode, EvalContext

#: Set in worker processes so :func:`resolve_jobs` never nests pools.
_IN_WORKER = False

#: Parent-eval cache entries kept per worker (FIFO eviction, mirrored
#: by the dispatcher so both sides agree on what is resident).
DEFAULT_CACHE_LIMIT = 128


def resolve_jobs(jobs: Optional[int] = None, config: Any = None) -> int:
    """Effective worker count: explicit arg > config ``jobs`` > env > 1.

    ``REPRO_JOBS`` provides the environment override the CI parallel
    job uses; inside a shard worker the answer is always 1 so a
    parallel ``compare`` never spawns pools-within-pools.
    """
    if _IN_WORKER:
        return 1
    if jobs is not None:
        return max(1, int(jobs))
    if config is not None:
        cfg_jobs = getattr(config, "jobs", 0) or 0
        if cfg_jobs:
            return max(1, int(cfg_jobs))
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            # Never silently lose parallelism: a typo'd REPRO_JOBS in a
            # CI matrix would otherwise quietly run everything serial.
            warnings.warn(
                f"REPRO_JOBS={env!r} is not an integer; "
                "falling back to serial evaluation",
                RuntimeWarning,
                stacklevel=2,
            )
            return 1
    return 1


def full_structure_key(circuit: Circuit) -> bytes:
    """Back-compat shim: see :meth:`Circuit.full_structure_key`.

    The digest moved onto :class:`~repro.netlist.Circuit` so the batch
    evaluator's singles dedup can use it without importing this module
    (which imports the batch evaluator).
    """
    return circuit.full_structure_key()


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
@dataclass
class _ContextSpec:
    """Everything a worker needs to rebuild the session's EvalContext.

    The context itself is never shipped: it is fully determined by
    (reference circuit, library, error mode, vectors, weights), and the
    rebuild in the worker reproduces every baseline bit-for-bit — the
    same invariant ``Session.resume`` relies on.  The vector words are
    shipped verbatim rather than re-drawn from a seed so contexts built
    around externally supplied vector sets parallelize too.
    """

    reference: Circuit
    library: Any
    error_mode: ErrorMode
    vector_words: np.ndarray
    num_vectors: int
    wd: float
    depth_mode: DepthMode
    #: Evaluation-lake directory workers write through to (``None``:
    #: unset — workers resolve ``REPRO_CACHE`` themselves, matching the
    #: parent's lazy resolution; ``cache_off`` ships an explicit
    #: ``cache=False`` so a disabled parent disables its workers too).
    cache_dir: Optional[str] = None
    cache_off: bool = False

    @classmethod
    def from_ctx(cls, ctx: EvalContext) -> "_ContextSpec":
        lake = getattr(ctx, "lake", None)
        return cls(
            reference=ctx.reference,
            library=ctx.library,
            error_mode=ctx.error_mode,
            vector_words=ctx.vectors.words,
            num_vectors=ctx.vectors.num_vectors,
            wd=ctx.wd,
            depth_mode=ctx.depth_mode,
            cache_dir=lake.path if lake else None,
            cache_off=lake is False,
        )

    def build(self) -> EvalContext:
        ctx = EvalContext.build(
            self.reference,
            self.library,
            self.error_mode,
            vectors=VectorSet(self.vector_words, self.num_vectors),
            wd=self.wd,
            depth_mode=self.depth_mode,
        )
        if self.cache_off:
            # lint: allow[R3] worker-local context built before serving
            ctx.lake = False
        elif self.cache_dir:
            from ..lake import open_cache

            # lint: allow[R3] worker-local context built before serving
            ctx.lake = open_cache(self.cache_dir)
        return ctx


# A CircuitEval's ``values`` are a dense SoA matrix laid out by the
# same sorted-gid row numbering as the timing arrays, so evals cross
# the pipe with that matrix shipped raw — no per-gate keys, no dict
# repacking — and the row index is rebuilt memoized from the circuit on
# the receiving side (``keys is None`` marks the dense layout).  Legacy
# dict value maps (the diverged-fallback path) still ship as a key
# array plus stacked rows, exactly as PR 3 packed them.  Timing rides
# the same way: the report's SoA arrays ship raw (five numpy arrays
# instead of five per-gate dicts).
_PackedEval = Tuple[
    Circuit,  # shares identity with report.circuit through one pickle
    Tuple,  # TimingReport.pack(): five SoA arrays + structure version
    Optional[np.ndarray],  # value-map keys (int64); None = dense store
    np.ndarray,  # value matrix: (index.n + 2, W) dense or stacked rows
    float,  # depth
    float,  # area
    float,  # error
    List[float],  # per_po_error
    float,  # fd
    float,  # fa
    float,  # fitness
    int,  # circuit_version
]


def _pack_eval(ev: CircuitEval) -> _PackedEval:
    values = ev.values
    if isinstance(values, ValueStore):
        keys: Optional[np.ndarray] = None
        matrix = values.matrix
    else:
        keys = np.fromiter(values.keys(), dtype=np.int64, count=len(values))
        matrix = (
            np.stack(list(values.values()))
            if values
            else np.empty((0, 0), dtype=np.uint64)
        )
    return (
        ev.circuit,
        ev.report.pack(),
        keys,
        matrix,
        ev.depth,
        ev.area,
        ev.error,
        ev.per_po_error,
        ev.fd,
        ev.fa,
        ev.fitness,
        ev.circuit_version,
    )


def _unpack_eval(packed: _PackedEval) -> CircuitEval:
    (
        circuit,
        report_payload,
        keys,
        matrix,
        depth,
        area,
        error,
        per_po,
        fd,
        fa,
        fitness,
        version,
    ) = packed
    if keys is None:
        # Dense store: rebuild the (memoized) row index from the
        # circuit that travelled alongside — same sorted-gid numbering
        # the sender laid the matrix out by.  The matrix arrives
        # writable from the pipe; republish it read-only — a shipped
        # eval is as published as the local one it mirrors.
        values: Any = ValueStore(
            value_store_index(circuit), publish_array(matrix)
        )
    else:
        values = {int(k): matrix[i] for i, k in enumerate(keys)}
    return CircuitEval(
        circuit=circuit,
        report=TimingReport.unpack(circuit, report_payload),
        values=values,
        depth=depth,
        area=area,
        error=error,
        per_po_error=per_po,
        fd=fd,
        fa=fa,
        fitness=fitness,
        circuit_version=version,
    )


def _reattach_provenance(
    circuit: Circuit, parent: CircuitEval, changed: FrozenSet[int]
) -> None:
    """Re-stamp a shipped child against the worker's parent copy.

    Pickling deliberately drops provenance (it is only meaningful
    relative to an in-memory parent object); the dispatcher shipped the
    ``changed`` set alongside, and the worker's cached parent is
    structurally identical to the original, so the re-stamped record
    drives exactly the cone walk the serial path would have run.
    """
    circuit.provenance = Provenance(
        parent.circuit, parent.circuit_version, changed
    )
    circuit._prov_version = circuit._version


def _worker_eval(
    ctx: EvalContext,
    ref_key: bytes,
    cache: "Dict[bytes, CircuitEval]",
    evicts: Sequence[bytes],
    groups: Sequence[Tuple[bytes, Optional["_PackedEval"], List]],
    singles: Sequence[Tuple[int, Circuit, bytes]],
) -> List[Tuple[int, "_PackedEval"]]:
    """Evaluate one shard: provenance groups + full-eval singles."""
    for key in evicts:
        cache.pop(key, None)
    results: List[Tuple[int, _PackedEval]] = []
    for key, payload, members in groups:
        if payload is not None:
            parent = _unpack_eval(payload)
            cache[key] = parent
        elif key == ref_key:
            parent = ctx.reference_eval()
        else:
            parent = cache.get(key)
            if parent is None:
                raise RuntimeError(
                    "shard cache desync: dispatcher referenced a parent "
                    "this worker does not hold"
                )
        items: List[BatchItem] = []
        for _, circuit, changed, _ in members:
            _reattach_provenance(circuit, parent, changed)
            items.append((circuit, parent))
        evals = evaluate_batch(ctx, items)
        for (index, _, _, child_key), ev in zip(members, evals):
            if child_key is not None:
                cache[child_key] = ev
            results.append((index, _pack_eval(ev)))
    if singles:
        # Through the batch evaluator rather than a bare `evaluate`
        # loop so the shard consults/populates the evaluation lake and
        # shares duplicate-key work exactly like the serial path
        # (pickling dropped any provenance, so every item stays a
        # full-evaluation single — bit-identical either way).
        evals = evaluate_batch(
            ctx, [(circuit, None) for _, circuit, _ in singles]
        )
        for (index, _, child_key), ev in zip(singles, evals):
            if child_key is not None:
                cache[child_key] = ev
            results.append((index, _pack_eval(ev)))
    lake = getattr(ctx, "lake", None)
    if lake:
        # Workers exit through ``os._exit`` (no atexit), so lake hit/put
        # counters are flushed per shard — one appended delta line, and
        # only when the counters actually moved.
        lake.flush_stats()
    return results


def _worker_run(ctx: EvalContext, method: str, flow_config: Any) -> Any:
    """Run one whole method (optimizer + post-opt) against the worker ctx."""
    from ..session import Session

    session = Session(
        ctx.reference, config=flow_config, library=ctx.library, ctx=ctx
    )
    return session.run(method)


def _worker_main(conn: Connection, spec: _ContextSpec) -> None:
    """Worker loop: build the cloned context lazily, serve shard messages.

    The context build is *not* done eagerly at process start: a failing
    build (e.g. a poisoned cell library) must surface as an ordinary
    error reply to the first message — raising out of the loop would
    leave the dispatcher waiting on a dead pipe.
    """
    global _IN_WORKER
    _IN_WORKER = True
    ctx: Optional[EvalContext] = None
    ref_key: Optional[bytes] = None
    init_error: Optional[BaseException] = None
    cache: Dict[bytes, CircuitEval] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if msg is None or msg[0] == "stop":
            break
        try:
            if ctx is None and init_error is None:
                try:
                    ctx = spec.build()
                    ref_key = full_structure_key(ctx.reference)
                except BaseException as exc:  # noqa: BLE001 - report, don't die
                    init_error = exc
            if init_error is not None:
                raise init_error
            kind = msg[0]
            if kind == "ping":
                result: Any = None
            elif kind == "eval":
                result = _worker_eval(ctx, ref_key, cache, *msg[1:])
            elif kind == "run":
                result = _worker_run(ctx, *msg[1:])
            else:
                raise RuntimeError(f"unknown shard message {kind!r}")
            reply: Tuple = ("ok", result)
        except BaseException as exc:  # noqa: BLE001 - marshal to parent
            reply = ("err", (exc, traceback.format_exc()))
        try:
            conn.send(reply)
        except Exception as send_exc:  # unpicklable result/exception
            try:
                conn.send(
                    (
                        "err",
                        (
                            RuntimeError(
                                "worker reply could not be serialized: "
                                f"{send_exc!r}"
                            ),
                            traceback.format_exc(),
                        ),
                    )
                )
            except Exception:
                break


# ----------------------------------------------------------------------
# dispatcher (parent side)
# ----------------------------------------------------------------------
@dataclass
class _WorkerPlan:
    """One worker's share of a dispatch, built deterministically."""

    evicts: List[bytes] = field(default_factory=list)
    groups: List[Tuple[bytes, Optional[_PackedEval], List]] = field(
        default_factory=list
    )
    singles: List[Tuple[int, Circuit, bytes]] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not (self.groups or self.singles)


def _start_method() -> str:
    """Prefer fork (cheap, inherits the interpreter) when available."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class ShardDispatcher:
    """A pool of evaluation workers with deterministic shard routing.

    Args:
        ctx: the evaluation context whose workload is being sharded;
            each worker rebuilds its own clone from the same inputs.
        jobs: number of worker processes (>= 1; a 1-worker dispatcher
            is legal but pointless — callers gate on ``jobs > 1``).
        cache_limit: parent-eval cache entries per worker.  The
            dispatcher mirrors each worker's FIFO bookkeeping, so both
            sides always agree on which parents are resident.

    The dispatcher is deliberately single-brained: every routing,
    caching and eviction decision is made in the parent process and
    shipped to workers as explicit instructions, which is what makes a
    run's dispatch sequence — and therefore its results — a pure
    function of the item stream, independent of scheduling.
    """

    def __init__(
        self,
        ctx: EvalContext,
        jobs: int,
        cache_limit: int = DEFAULT_CACHE_LIMIT,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache_limit = max(cache_limit, 8)
        self._closed = False
        #: Serializes pool access: the pipes, routing tables and cache
        #: mirrors assume one dispatch in flight, so concurrent callers
        #: (serve-mode jobs sharing a pool, a signal-driven close racing
        #: an evaluation) queue here instead of interleaving messages.
        #: Reentrant because the error path closes from inside a
        #: dispatch.
        self._lock = TrackedLock("ShardDispatcher._lock", reentrant=True)
        self._ref_key = full_structure_key(ctx.reference)
        #: Mirror of each worker's cache keys, in insertion (FIFO) order.
        self._known: List["OrderedDict[bytes, None]"] = [
            OrderedDict() for _ in range(jobs)
        ]
        self._rr = 0  # round-robin counter for full-eval singles
        spec = _ContextSpec.from_ctx(ctx)
        mp = multiprocessing.get_context(_start_method())
        self._workers: List[Tuple[Any, Connection]] = []
        for i in range(jobs):
            parent_conn, child_conn = mp.Pipe()
            proc = mp.Process(
                target=_worker_main,
                args=(child_conn, spec),
                daemon=True,
                name=f"repro-shard-{i}",
            )
            proc.start()
            child_conn.close()
            self._workers.append((proc, parent_conn))

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def warmup(self) -> None:
        """Force every worker to build its context now (optional).

        Useful before timed regions (the runtime-scaling bench measures
        steady-state throughput) and to surface context-build errors
        eagerly; :meth:`evaluate_items` works without it.
        """
        with self._lock:
            for w in range(self.jobs):
                self._send(w, ("ping",))
            self._collect(range(self.jobs), out=None)

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def _register(
        self,
        worker: int,
        key: bytes,
        plan: _WorkerPlan,
        pinned: set,
    ) -> None:
        """Record that ``worker`` will hold ``key`` after this dispatch.

        FIFO-evicts the oldest unpinned entries beyond ``cache_limit``;
        keys touched by the current dispatch are pinned so an eviction
        can never invalidate a group scheduled moments earlier.
        """
        known = self._known[worker]
        if key in known:
            pinned.add(key)
            return
        known[key] = None
        pinned.add(key)
        while len(known) > self.cache_limit:
            victim = next(
                (old for old in known if old not in pinned), None
            )
            if victim is None:
                break
            del known[victim]
            plan.evicts.append(victim)

    def _owner_of(self, key: bytes) -> Optional[int]:
        for w in range(self.jobs):
            if key in self._known[w]:
                return w
        return None

    def _plan(
        self, items: Sequence[BatchItem], force_full: bool
    ) -> List[_WorkerPlan]:
        """Deterministically partition a generation into worker shards."""
        if force_full:
            groups: List = []
            singles: List[Tuple[int, Circuit]] = [
                (i, circuit) for i, (circuit, _) in enumerate(items)
            ]
        else:
            groups, singles = group_by_parent(items)
        plans = [_WorkerPlan() for _ in range(self.jobs)]
        pinned: set = set()
        for parent, members in groups:
            key = full_structure_key(parent.circuit)
            packed = [
                (i, circuit, changed, full_structure_key(circuit))
                for i, circuit, changed in members
            ]
            if key == self._ref_key:
                # Every worker rebuilds the reference eval locally, so
                # the (large) initial-population group splits for free.
                chunk = -(-len(packed) // self.jobs)  # ceil div
                for w in range(self.jobs):
                    part = packed[w * chunk : (w + 1) * chunk]
                    if not part:
                        continue
                    plans[w].groups.append((key, None, part))
                    for _, _, _, child_key in part:
                        self._register(w, child_key, plans[w], pinned)
                continue
            owner = self._owner_of(key)
            payload: Optional[_PackedEval] = None
            if owner is None:
                # First sighting: route by key hash, ship the parent.
                owner = int.from_bytes(key[:8], "big") % self.jobs
                payload = _pack_eval(parent)
                self._register(owner, key, plans[owner], pinned)
            else:
                pinned.add(key)
            plans[owner].groups.append((key, payload, packed))
            for _, _, _, child_key in packed:
                self._register(owner, child_key, plans[owner], pinned)
        for i, circuit in singles:
            w = self._rr % self.jobs
            self._rr += 1
            child_key = full_structure_key(circuit)
            plans[w].singles.append((i, circuit, child_key))
            self._register(w, child_key, plans[w], pinned)
        return plans

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _send(self, worker: int, msg: Tuple) -> None:
        if self._closed:
            raise RuntimeError("dispatcher is closed")
        try:
            self._workers[worker][1].send(msg)
        except (OSError, ValueError) as exc:
            failure = RuntimeError(
                f"parallel worker {worker} is gone ({exc!r})"
            )
            self.close(force=True)
            raise failure from exc

    def _recv_reply(self, worker: int) -> Tuple[str, Any]:
        """Receive one reply, watching the process as well as the pipe.

        A worker that dies abruptly may never close our end of the pipe
        (sibling workers forked later hold inherited copies of its write
        fd), so a bare ``recv`` could block forever; polling with a
        liveness check turns that into a clean :class:`EOFError`.
        """
        proc, conn = self._workers[worker]
        while True:
            if conn.poll(0.05):
                return conn.recv()
            if not proc.is_alive():
                if conn.poll(0.05):  # drain a reply racing the exit
                    return conn.recv()
                raise EOFError(f"worker exited with {proc.exitcode!r}")

    def _collect(
        self,
        workers: Sequence[int],
        out: Optional[List[Optional[CircuitEval]]],
    ) -> List[Any]:
        """Receive one reply per listed worker; merge or fail atomically.

        On any worker error the *original* exception is re-raised after
        the whole pool is torn down — partially merged results are
        discarded, and no process is left behind (the crash-safety
        contract ``tests/test_parallel_eval.py`` pins).
        """
        replies: List[Any] = []
        failure: Optional[BaseException] = None
        failure_tb = ""
        for w in workers:
            try:
                kind, payload = self._recv_reply(w)
            except (EOFError, OSError) as exc:
                if failure is None:
                    failure = RuntimeError(
                        f"parallel worker {w} died without replying"
                    )
                    failure.__cause__ = exc
                continue
            if kind == "err":
                if failure is None:
                    failure, failure_tb = payload
                continue
            if out is not None:
                for index, packed in payload:
                    out[index] = _unpack_eval(packed)
            replies.append(payload)
        if failure is not None:
            self.close(force=True)
            if failure_tb and hasattr(failure, "add_note"):
                failure.add_note(
                    "raised in a shard worker; worker traceback:\n"
                    + failure_tb
                )
            raise failure
        return replies

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------
    def evaluate_items(
        self, items: Sequence[BatchItem], force_full: bool = False
    ) -> List[CircuitEval]:
        """Evaluate a generation across the pool; bit-identical to serial.

        ``force_full`` mirrors ``use_incremental=False``: every item is
        fully evaluated (still sharded), matching what the serial path
        would have computed under that toggle.
        """
        if not items:
            return []
        with self._lock:
            plans = self._plan(items, force_full)
            out: List[Optional[CircuitEval]] = [None] * len(items)
            active = [w for w, plan in enumerate(plans) if not plan.empty]
            for w in active:
                plan = plans[w]
                self._send(
                    w, ("eval", plan.evicts, plan.groups, plan.singles)
                )
            self._collect(active, out)
        return out  # type: ignore[return-value]

    def run_methods(
        self, methods: Sequence[str], flow_config: Any
    ) -> Dict[str, Any]:
        """Run whole methods concurrently (``Session.compare`` backend).

        Each method's full flow (optimizer + post-optimization) runs in
        one worker against that worker's cloned context; methods beyond
        the pool size queue up and start as workers free up.  Results
        come back keyed and are returned in the requested method order.
        Individual runs are seeded and independent, so concurrency
        cannot change any result.
        """
        with self._lock:
            pending = deque(methods)
            inflight: Dict[int, str] = {}
            results: Dict[str, Any] = {}
            conn_to_worker = {
                self._workers[w][1]: w for w in range(self.jobs)
            }
            for w in range(self.jobs):
                if not pending:
                    break
                method = pending.popleft()
                self._send(w, ("run", method, flow_config))
                inflight[w] = method
            while inflight:
                ready = connection_wait(
                    [self._workers[w][1] for w in inflight], timeout=0.1
                )
                if not ready:
                    # No data: make sure everyone we wait on is still
                    # alive (a dead worker's pipe may be held open by
                    # siblings).
                    dead = [
                        w
                        for w in inflight
                        if not self._workers[w][0].is_alive()
                        and not self._workers[w][1].poll(0)
                    ]
                    if dead:
                        w = dead[0]
                        method = inflight.pop(w)
                        self.close(force=True)
                        raise RuntimeError(
                            f"parallel worker {w} died running {method!r}"
                        )
                    continue
                for conn in ready:
                    w = conn_to_worker[conn]
                    method = inflight.pop(w)
                    try:
                        kind, payload = conn.recv()
                    except (EOFError, OSError) as exc:
                        self.close(force=True)
                        raise RuntimeError(
                            f"parallel worker {w} died running {method!r}"
                        ) from exc
                    if kind == "err":
                        exc, tb = payload
                        self.close(force=True)
                        if tb and hasattr(exc, "add_note"):
                            exc.add_note(
                                "raised in a shard worker; worker "
                                "traceback:\n" + tb
                            )
                        raise exc
                    results[method] = payload
                    if pending:
                        nxt = pending.popleft()
                        self._send(w, ("run", nxt, flow_config))
                        inflight[w] = nxt
            return {m: results[m] for m in methods}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, force: bool = False) -> None:
        """Shut the pool down; idempotent.

        Graceful close asks workers to exit and joins them; ``force``
        (the error path) skips the goodbye and terminates stragglers so
        a poisoned pool can never leave hung processes behind.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for _, conn in self._workers:
                if not force:
                    try:
                        conn.send(("stop",))
                    except Exception:
                        pass
                try:
                    conn.close()
                except Exception:
                    pass
            for proc, _ in self._workers:
                proc.join(timeout=0.2 if force else 2.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=2.0)

    def __enter__(self) -> "ShardDispatcher":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            self.close(force=True)
        except Exception:
            pass


#: Guards the per-context dispatcher slot: two threads resolving
#: ``jobs > 1`` on one context must share one pool, not fork two.
_DISPATCHER_LOCK = TrackedLock("parallel._DISPATCHER_LOCK")


def get_dispatcher(ctx: EvalContext, jobs: int) -> ShardDispatcher:
    """The context's dispatcher, (re)built when absent, closed or resized.

    The dispatcher lives on the :class:`EvalContext` so every consumer
    of one context — optimizer generations, ``Session.evaluate_batch``,
    ``Session.compare`` — shares one warm pool, and the worker-side
    parent caches stay hot across generations.  Thread-safe: concurrent
    callers get the same pool, and each dispatch serializes on the
    dispatcher's own lock.
    """
    with _DISPATCHER_LOCK:
        existing = getattr(ctx, "_dispatcher", None)
        if (
            existing is not None
            and not existing.closed
            and existing.jobs == jobs
        ):
            return existing
        if existing is not None:
            existing.close()
        dispatcher = ShardDispatcher(ctx, jobs)
        ctx._dispatcher = dispatcher
        return dispatcher


def close_dispatcher(ctx: EvalContext) -> None:
    """Close and detach the context's dispatcher, if any."""
    with _DISPATCHER_LOCK:
        existing = getattr(ctx, "_dispatcher", None)
        if existing is not None:
            existing.close()
            ctx._dispatcher = None
