"""Population division and grey-wolf decision parameters (Eqs. 4-7).

The double-chase hierarchy (paper Fig. 4) splits the population by
fitness into the leader circuit (rank 1), three elite circuits (ranks
2-4), and the ω group (everything else).  Each non-leader circuit draws a
decision parameter

    W = A * D,   A = (2 r1 - 1) * a,   a = 2 - 2 iter / Imax

where D measures fitness distance to the hierarchy it chases: elites
chase the leader, ω circuits chase the elite average (Eq. 4, with
``rc ~ U[0, 2]``).  Comparing W with the thresholds Se / Sω decides
between the searching and reproduction actions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from .fitness import CircuitEval

#: Number of elite circuits below the leader (paper: fitness ranks 2-4).
NUM_ELITES = 3


@dataclass
class PopulationDivision:
    """Fitness-ranked split of one population."""

    leader: CircuitEval
    elites: List[CircuitEval]
    omegas: List[CircuitEval]

    @property
    def all_members(self) -> List[CircuitEval]:
        """Leader, elites, and ω circuits in rank order."""
        return [self.leader] + self.elites + self.omegas

    @property
    def elite_mean_fitness(self) -> float:
        """Average elite fitness — the ω group's chase reference (Eq. 4)."""
        if not self.elites:
            return self.leader.fitness
        return sum(e.fitness for e in self.elites) / len(self.elites)


def divide_population(population: Sequence[CircuitEval]) -> PopulationDivision:
    """Rank by fitness and split into leader / elites / ω group."""
    if not population:
        raise ValueError("population is empty")
    ranked = sorted(population, key=lambda ev: -ev.fitness)
    return PopulationDivision(
        leader=ranked[0],
        elites=list(ranked[1 : 1 + NUM_ELITES]),
        omegas=list(ranked[1 + NUM_ELITES :]),
    )


def scaling_factor(iteration: int, imax: int) -> float:
    """Eq. 7: ``a`` decays linearly from 2 to 0 over the run."""
    if imax <= 0:
        raise ValueError("imax must be positive")
    iteration = min(max(iteration, 0), imax)
    return 2.0 - 2.0 * iteration / imax


def encircling_coefficient(a: float, rng: random.Random) -> float:
    """Eq. 6: ``A = (2 r1 - 1) a`` with ``r1 ~ U[0, 1]``."""
    return (2.0 * rng.random() - 1.0) * a


def fitness_distance(
    ev: CircuitEval, reference_fitness: float, rng: random.Random
) -> float:
    """Eq. 4: ``D = rc * Fit(ref) - Fit(ci)`` with ``rc ~ U[0, 2]``."""
    rc = 2.0 * rng.random()
    return rc * reference_fitness - ev.fitness


def decision_parameter(
    ev: CircuitEval,
    reference_fitness: float,
    a: float,
    rng: random.Random,
) -> float:
    """Eq. 5: ``W = A * D`` — the action selector for one circuit."""
    d = fitness_distance(ev, reference_fitness, rng)
    return encircling_coefficient(a, rng) * d
