"""The double-chase grey wolf optimizer (paper §III-B, Figs. 2/4/5).

Per iteration:

* the population is divided into leader / elites / ω group by fitness;
* **Chase 1** — each elite draws ``W`` against the leader's fitness and
  either reproduces with a fitter circuit (``W > Se``) or searches;
* **Chase 2** — each ω circuit draws ``W`` against the elite average and
  either performs *both* actions (``W > Sω``) or a random one of the two;
* the leader always searches, preserving its variability;
* candidates (population before + after the chases) are filtered by the
  asymptotically relaxed error constraint, non-dominated sorted on
  ``(fd, fa)`` with crowding distance, and the best N survive.

The best error-feasible circuit seen anywhere in the run is archived and
returned.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..netlist import Circuit
from ..sim import best_switch
from .fitness import (
    CircuitEval,
    DepthMode,
    EvalContext,
    ParentEvals,
    evaluate,
    evaluate_incremental,
)
from .lacs import LAC, applied_copy, is_safe
from .pareto import nsga2_select
from .population import (
    decision_parameter,
    divide_population,
    scaling_factor,
)
from .relaxation import ErrorRelaxation
from .reproduction import (
    LevelWeights,
    circuit_reproduce,
    pick_superior_partner,
)
from .result import IterationStats, OptimizationResult
from .searching import circuit_search, circuit_simplify


@dataclass
class DCGWOConfig:
    """Hyper-parameters; defaults follow the paper's §IV-A settings."""

    population_size: int = 30  # N
    imax: int = 20  # upper iteration limit
    wd: float = 0.8  # depth weight in Eq. 8 (Fig. 6 optimum)
    se: float = 0.0  # elite decision threshold
    s_omega: float = 0.0  # omega decision threshold
    num_paths: int = 2  # critical paths mined per search
    search_retries: int = 4  # re-draws when a search child is a duplicate
    seed: int = 0
    relax_start_fraction: float = 0.25
    depth_mode: DepthMode = DepthMode.DELAY
    use_relaxation: bool = True  # ablation hook
    use_crowding: bool = True  # ablation hook: False = plain fitness sort
    use_reproduction: bool = True  # ablation hook: False = searching only
    use_incremental: bool = True  # cone-limited child evaluation
    enable_simplification: bool = False  # extension: in-place gate rewrites
    simplification_rate: float = 0.3  # P(simplify) per search action


class DCGWO:
    """Double-chase grey wolf optimizer over approximate circuits.

    Args:
        ctx: shared evaluation context built around the accurate circuit.
        error_bound: the user-specified maximum error (ER or NMED,
            matching ``ctx.error_mode``).
        config: hyper-parameters.
    """

    method_name = "DCGWO"

    def __init__(
        self,
        ctx: EvalContext,
        error_bound: float,
        config: Optional[DCGWOConfig] = None,
    ):
        self.ctx = ctx
        self.error_bound = error_bound
        self.config = config or DCGWOConfig()
        self._evaluations = 0

    # ------------------------------------------------------------------
    def _evaluate(
        self, circuit: Circuit, parents: ParentEvals = None
    ) -> CircuitEval:
        """Evaluate one candidate, cone-limited when a parent is known.

        With ``use_incremental`` (the default) and a valid provenance
        record, only the changed gates' fan-out cones are resimulated
        and retimed; results are bit-identical to the full path.
        """
        self._evaluations += 1
        if self.config.use_incremental:
            return evaluate_incremental(self.ctx, circuit, parents)
        return evaluate(self.ctx, circuit)

    def _random_lac(
        self, circuit: Circuit, rng: random.Random, values
    ) -> Optional[LAC]:
        """A similarity-guided LAC on a uniformly random logic gate."""
        logic = circuit.logic_ids()
        if not logic:
            return None
        for _ in range(8):  # retry budget against unsafe picks
            target = logic[rng.randrange(len(logic))]
            found = best_switch(
                circuit, values, target, self.ctx.vectors.num_vectors
            )
            if found is None:
                continue
            lac = LAC(target=target, switch=found[0])
            if is_safe(circuit, lac):
                return lac
        return None

    def _initial_population(self, rng: random.Random) -> List[CircuitEval]:
        """P0: accurate circuit forked with one random LAC per member."""
        population: List[CircuitEval] = []
        seen: Set[int] = set()
        reference = self.ctx.reference
        values = self.ctx.reference_values
        attempts = 0
        while (
            len(population) < self.config.population_size
            and attempts < 20 * self.config.population_size
        ):
            attempts += 1
            lac = self._random_lac(reference, rng, values)
            if lac is None:
                break
            child = applied_copy(reference, lac)
            key = child.structure_key()
            if key in seen:
                continue
            seen.add(key)
            population.append(
                self._evaluate(child, self.ctx.reference_eval())
            )
        if not population:
            # Degenerate circuit with no admissible LAC: seed with the
            # accurate circuit itself so the optimizer still terminates.
            population.append(
                self._evaluate(reference.copy(), self.ctx.reference_eval())
            )
        return population

    # ------------------------------------------------------------------
    def _chase_children(
        self,
        population: List[CircuitEval],
        iteration: int,
        rng: random.Random,
        weights: LevelWeights,
        seen: Optional[Set[int]] = None,
    ) -> List[Tuple[Circuit, Tuple[CircuitEval, ...]]]:
        """Run both chases plus the leader search; returns new circuits,
        each paired with the parent eval(s) it derives from so the main
        loop can evaluate it incrementally.

        ``seen`` holds structure keys already in the candidate pool; a
        searched child that duplicates one is re-drawn (fresh random
        target) up to ``search_retries`` times, which keeps evaluation
        budget from being wasted once the population starts converging.
        """
        cfg = self.config
        division = divide_population(population)
        a = scaling_factor(iteration, cfg.imax)
        children: List[Tuple[Circuit, Tuple[CircuitEval, ...]]] = []
        seen_keys: Set[int] = seen if seen is not None else set()

        def search(ev: CircuitEval) -> None:
            for _ in range(max(cfg.search_retries, 1)):
                if (
                    cfg.enable_simplification
                    and rng.random() < cfg.simplification_rate
                ):
                    child = circuit_simplify(
                        ev, self.ctx, rng, cfg.num_paths
                    )
                else:
                    child = circuit_search(
                        ev, self.ctx, rng, cfg.num_paths
                    )
                if child is None:
                    return
                key = child.structure_key()
                if key not in seen_keys:
                    seen_keys.add(key)
                    children.append((child, (ev,)))
                    return

        def reproduce(ev: CircuitEval) -> None:
            if not cfg.use_reproduction:
                search(ev)
                return
            partner = pick_superior_partner(population, ev, rng)
            if partner is None:
                partner = division.leader
            if partner is ev:
                search(ev)
                return
            child = circuit_reproduce(ev, partner, self.ctx, weights)
            key = child.structure_key()
            if key in seen_keys:
                # The crossover reproduced an existing structure (the
                # parents' cones agree); fall back to searching so the
                # action still explores.
                search(ev)
                return
            seen_keys.add(key)
            children.append((child, (ev, partner)))

        # Chase 1: elites consult the leader.
        for ev in division.elites:
            w = decision_parameter(ev, division.leader.fitness, a, rng)
            if w > cfg.se:
                reproduce(ev)
            else:
                search(ev)

        # Chase 2: omega circuits consult the elite average.
        elite_ref = division.elite_mean_fitness
        for ev in division.omegas:
            w = decision_parameter(ev, elite_ref, a, rng)
            if w > cfg.s_omega:
                search(ev)
                reproduce(ev)
            elif rng.random() < 0.5:
                search(ev)
            else:
                reproduce(ev)

        # The leader searches to preserve variability.
        search(division.leader)
        return children

    def _select(
        self, candidates: List[CircuitEval], constraint: float
    ) -> List[CircuitEval]:
        """Error filter + non-dominated sort + crowding selection."""
        cfg = self.config
        feasible = [ev for ev in candidates if ev.error <= constraint]
        if not feasible:
            # Everything violates the (tight, early) constraint: keep the
            # lowest-error members so the population can re-enter the
            # feasible region instead of dying out.
            feasible = sorted(candidates, key=lambda ev: ev.error)[
                : cfg.population_size
            ]
        if not cfg.use_crowding:
            ranked = sorted(feasible, key=lambda ev: -ev.fitness)
            return ranked[: cfg.population_size]
        points = [(ev.fd, ev.fa) for ev in feasible]
        chosen = nsga2_select(points, cfg.population_size)
        return [feasible[i] for i in chosen]

    # ------------------------------------------------------------------
    def optimize(self) -> OptimizationResult:
        """Run the full DCGWO loop and return the archived best."""
        cfg = self.config
        rng = random.Random(cfg.seed)
        start = time.perf_counter()
        self._evaluations = 0
        weights = LevelWeights.paper_defaults(self.ctx)
        relax = ErrorRelaxation(
            final=self.error_bound,
            imax=cfg.imax,
            start_fraction=(
                cfg.relax_start_fraction if cfg.use_relaxation else 1.0
            ),
        )

        population = self._initial_population(rng)
        best: Optional[CircuitEval] = None

        def consider(ev: CircuitEval) -> None:
            nonlocal best
            if ev.error > self.error_bound:
                return
            if best is None or ev.fitness > best.fitness:
                best = ev

        for ev in population:
            consider(ev)

        history: List[IterationStats] = []
        for iteration in range(1, cfg.imax + 1):
            constraint = relax.at(iteration)
            seen = {ev.circuit.structure_key() for ev in population}
            children = self._chase_children(
                population, iteration, rng, weights, seen
            )
            child_evals: List[CircuitEval] = []
            evaluated: Set[int] = set()
            for child, parents in children:
                key = child.structure_key()
                if key in evaluated:
                    continue
                evaluated.add(key)
                child_evals.append(self._evaluate(child, parents))
            for ev in child_evals:
                consider(ev)
            candidates = population + child_evals
            population = self._select(candidates, constraint)
            top = max(population, key=lambda ev: ev.fitness)
            history.append(
                IterationStats(
                    iteration=iteration,
                    best_fitness=top.fitness,
                    best_fd=top.fd,
                    best_fa=top.fa,
                    best_error=top.error,
                    error_constraint=constraint,
                    evaluations=self._evaluations,
                )
            )

        if best is None:
            # No feasible approximation found: fall back to the accurate
            # circuit (zero error, ratio 1.0) so downstream stages work.
            best = self._evaluate(
                self.ctx.reference.copy(), self.ctx.reference_eval()
            )
        return OptimizationResult(
            method=self.method_name,
            best=best,
            population=population,
            history=history,
            evaluations=self._evaluations,
            runtime_s=time.perf_counter() - start,
        )
