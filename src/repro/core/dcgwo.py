"""The double-chase grey wolf optimizer (paper §III-B, Figs. 2/4/5).

Per iteration:

* the population is divided into leader / elites / ω group by fitness;
* **Chase 1** — each elite draws ``W`` against the leader's fitness and
  either reproduces with a fitter circuit (``W > Se``) or searches;
* **Chase 2** — each ω circuit draws ``W`` against the elite average and
  either performs *both* actions (``W > Sω``) or a random one of the two;
* the leader always searches, preserving its variability;
* candidates (population before + after the chases) are filtered by the
  asymptotically relaxed error constraint, non-dominated sorted on
  ``(fd, fa)`` with crowding distance, and the best N survive.

The best error-feasible circuit seen anywhere in the run is archived and
returned.

Structurally the class is an :class:`~repro.core.protocol.Optimizer`:
the loop state (population, archive, RNG, history) lives in a
serializable :class:`~repro.core.protocol.OptimizerState`, one iteration
is :meth:`DCGWO._step`, and the shared protocol driver provides
streaming callbacks, pause (``stop_after``) and bit-identical resume.
Each iteration's children are evaluated as one generation through the
shared-topo-walk batch path (``use_batch``), falling back to
per-candidate incremental evaluation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..netlist import Circuit
from ..registry import register_method
from ..sim import best_switch
from .fitness import CircuitEval, DepthMode, EvalContext
from .lacs import LAC, applied_copy, is_safe
from .pareto import nsga2_select
from .population import (
    decision_parameter,
    divide_population,
    scaling_factor,
)
from .protocol import Optimizer, OptimizerState
from .relaxation import ErrorRelaxation
from .reproduction import (
    LevelWeights,
    circuit_reproduce,
    pick_superior_partner,
)
from .result import IterationStats
from .searching import circuit_search, circuit_simplify


@dataclass
class DCGWOConfig:
    """Hyper-parameters; defaults follow the paper's §IV-A settings."""

    population_size: int = 30  # N
    imax: int = 20  # upper iteration limit
    wd: float = 0.8  # depth weight in Eq. 8 (Fig. 6 optimum)
    se: float = 0.0  # elite decision threshold
    s_omega: float = 0.0  # omega decision threshold
    num_paths: int = 2  # critical paths mined per search
    search_retries: int = 4  # re-draws when a search child is a duplicate
    seed: int = 0
    relax_start_fraction: float = 0.25
    depth_mode: DepthMode = DepthMode.DELAY
    use_relaxation: bool = True  # ablation hook
    use_crowding: bool = True  # ablation hook: False = plain fitness sort
    use_reproduction: bool = True  # ablation hook: False = searching only
    use_incremental: bool = True  # cone-limited child evaluation
    use_batch: bool = True  # shared-topo-walk generation evaluation
    use_parallel: bool = True  # allow multi-process generation sharding
    jobs: int = 0  # worker processes (0: serial unless REPRO_JOBS is set)
    #: Evaluation-lake directory (None: session/REPRO_CACHE resolution).
    cache_dir: Optional[str] = None
    enable_simplification: bool = False  # extension: in-place gate rewrites
    simplification_rate: float = 0.3  # P(simplify) per search action


@register_method(
    "Ours",
    aliases=("DCGWO",),
    order=5,
    budget_fields={"population_size": "population_size", "imax": "iterations"},
    description="double-chase grey wolf optimizer (the paper's method)",
)
class DCGWO(Optimizer):
    """Double-chase grey wolf optimizer over approximate circuits.

    Args:
        ctx: shared evaluation context built around the accurate circuit.
        error_bound: the user-specified maximum error (ER or NMED,
            matching ``ctx.error_mode``).
        config: hyper-parameters.
    """

    method_name = "DCGWO"
    config_cls = DCGWOConfig

    def __init__(
        self,
        ctx: EvalContext,
        error_bound: float,
        config: Optional[DCGWOConfig] = None,
    ):
        super().__init__(ctx, error_bound, config)
        cfg = self.config
        self._relaxation = ErrorRelaxation(
            final=error_bound,
            imax=cfg.imax,
            start_fraction=(
                cfg.relax_start_fraction if cfg.use_relaxation else 1.0
            ),
        )

    # ------------------------------------------------------------------
    def _random_lac(
        self, circuit: Circuit, rng: random.Random, values
    ) -> Optional[LAC]:
        """A similarity-guided LAC on a uniformly random logic gate."""
        logic = circuit.logic_ids()
        if not logic:
            return None
        for _ in range(8):  # retry budget against unsafe picks
            target = logic[rng.randrange(len(logic))]
            found = best_switch(
                circuit, values, target, self.ctx.vectors.num_vectors
            )
            if found is None:
                continue
            lac = LAC(target=target, switch=found[0])
            if is_safe(circuit, lac):
                return lac
        return None

    def _initial_population(self, rng: random.Random) -> List[CircuitEval]:
        """P0: accurate circuit forked with one random LAC per member.

        The forked circuits are collected first and evaluated as one
        generation (none of the RNG draws depend on evaluation results,
        so batching preserves the exact seeded trajectory).  Warm-start
        seeds (``Session.warm_start`` fronts handed to the optimizer)
        occupy leading population slots; the remainder is filled with
        the usual random LAC forks.  Seeding changes the trajectory —
        it is an explicit opt-in, never implied by an attached cache.
        """
        cfg = self.config
        reference = self.ctx.reference
        values = self.ctx.reference_values
        circuits: List[Circuit] = []
        seeded: List[Circuit] = []
        seen: Set[int] = set()
        for seed_circuit in self.seed_circuits:
            if len(seeded) >= cfg.population_size:
                break
            key = seed_circuit.structure_key()
            if key in seen:
                continue
            seen.add(key)
            seeded.append(seed_circuit.copy())
        attempts = 0
        while (
            len(seeded) + len(circuits) < cfg.population_size
            and attempts < 20 * cfg.population_size
        ):
            attempts += 1
            lac = self._random_lac(reference, rng, values)
            if lac is None:
                break
            child = applied_copy(reference, lac)
            key = child.structure_key()
            if key in seen:
                continue
            seen.add(key)
            circuits.append(child)
        if not circuits and not seeded:
            # Degenerate circuit with no admissible LAC: seed with the
            # accurate circuit itself so the optimizer still terminates.
            return [
                self._evaluate(reference.copy(), self.ctx.reference_eval())
            ]
        parents = (self.ctx.reference_eval(),)
        # Warm-start seeds came from disk, so they carry no provenance
        # and evaluate fully (or straight from the lake when attached).
        return self._evaluate_generation(
            [(c, None) for c in seeded]
            + [(c, parents) for c in circuits]
        )

    # ------------------------------------------------------------------
    def _chase_children(
        self,
        population: List[CircuitEval],
        iteration: int,
        rng: random.Random,
        weights: LevelWeights,
        seen: Optional[Set[int]] = None,
    ) -> List[Tuple[Circuit, Tuple[CircuitEval, ...]]]:
        """Run both chases plus the leader search; returns new circuits,
        each paired with the parent eval(s) it derives from so the main
        loop can evaluate it incrementally.

        ``seen`` holds structure keys already in the candidate pool; a
        searched child that duplicates one is re-drawn (fresh random
        target) up to ``search_retries`` times, which keeps evaluation
        budget from being wasted once the population starts converging.
        """
        cfg = self.config
        division = divide_population(population)
        a = scaling_factor(iteration, cfg.imax)
        children: List[Tuple[Circuit, Tuple[CircuitEval, ...]]] = []
        seen_keys: Set[int] = seen if seen is not None else set()

        def search(ev: CircuitEval) -> None:
            for _ in range(max(cfg.search_retries, 1)):
                if (
                    cfg.enable_simplification
                    and rng.random() < cfg.simplification_rate
                ):
                    child = circuit_simplify(
                        ev, self.ctx, rng, cfg.num_paths
                    )
                else:
                    child = circuit_search(
                        ev, self.ctx, rng, cfg.num_paths
                    )
                if child is None:
                    return
                key = child.structure_key()
                if key not in seen_keys:
                    seen_keys.add(key)
                    children.append((child, (ev,)))
                    return

        def reproduce(ev: CircuitEval) -> None:
            if not cfg.use_reproduction:
                search(ev)
                return
            partner = pick_superior_partner(population, ev, rng)
            if partner is None:
                partner = division.leader
            if partner is ev:
                search(ev)
                return
            child = circuit_reproduce(ev, partner, self.ctx, weights)
            key = child.structure_key()
            if key in seen_keys:
                # The crossover reproduced an existing structure (the
                # parents' cones agree); fall back to searching so the
                # action still explores.
                search(ev)
                return
            seen_keys.add(key)
            children.append((child, (ev, partner)))

        # Chase 1: elites consult the leader.
        for ev in division.elites:
            w = decision_parameter(ev, division.leader.fitness, a, rng)
            if w > cfg.se:
                reproduce(ev)
            else:
                search(ev)

        # Chase 2: omega circuits consult the elite average.
        elite_ref = division.elite_mean_fitness
        for ev in division.omegas:
            w = decision_parameter(ev, elite_ref, a, rng)
            if w > cfg.s_omega:
                search(ev)
                reproduce(ev)
            elif rng.random() < 0.5:
                search(ev)
            else:
                reproduce(ev)

        # The leader searches to preserve variability.
        search(division.leader)
        return children

    def _select(
        self, candidates: List[CircuitEval], constraint: float
    ) -> List[CircuitEval]:
        """Error filter + non-dominated sort + crowding selection."""
        cfg = self.config
        feasible = [ev for ev in candidates if ev.error <= constraint]
        if not feasible:
            # Everything violates the (tight, early) constraint: keep the
            # lowest-error members so the population can re-enter the
            # feasible region instead of dying out.
            feasible = sorted(candidates, key=lambda ev: ev.error)[
                : cfg.population_size
            ]
        if not cfg.use_crowding:
            ranked = sorted(feasible, key=lambda ev: -ev.fitness)
            return ranked[: cfg.population_size]
        points = [(ev.fd, ev.fa) for ev in feasible]
        chosen = nsga2_select(points, cfg.population_size)
        return [feasible[i] for i in chosen]

    # ------------------------------------------------------------------
    # protocol implementation
    # ------------------------------------------------------------------
    def _consider(self, state: OptimizerState, ev: CircuitEval) -> None:
        """Archive ``ev`` if it is feasible and the fittest seen."""
        if ev.error > self.error_bound:
            return
        if state.best is None or ev.fitness > state.best.fitness:
            state.best = ev

    def _init_state(self) -> OptimizerState:
        cfg = self.config
        rng = random.Random(cfg.seed)
        state = OptimizerState(limit=cfg.imax, rng=rng)
        state.extra["weights"] = LevelWeights.paper_defaults(self.ctx)
        state.population = self._initial_population(rng)
        for ev in state.population:
            self._consider(state, ev)
        return state

    def _step(self, state: OptimizerState) -> IterationStats:
        """One DCGWO iteration: chases, generation eval, NSGA-II select."""
        cfg = self.config
        iteration = state.iteration + 1
        constraint = self._relaxation.at(iteration)
        population = state.population
        seen = {ev.circuit.structure_key() for ev in population}
        children = self._chase_children(
            population, iteration, state.rng, state.extra["weights"], seen
        )
        items: List[Tuple[Circuit, Tuple[CircuitEval, ...]]] = []
        evaluated: Set[int] = set()
        for child, parents in children:
            key = child.structure_key()
            if key in evaluated:
                continue
            evaluated.add(key)
            items.append((child, parents))
        child_evals = self._evaluate_generation(items)
        for ev in child_evals:
            self._consider(state, ev)
        state.population = self._select(
            population + child_evals, constraint
        )
        top = max(state.population, key=lambda ev: ev.fitness)
        stats = IterationStats(
            iteration=iteration,
            best_fitness=top.fitness,
            best_fd=top.fd,
            best_fa=top.fa,
            best_error=top.error,
            error_constraint=constraint,
            evaluations=self._evaluations,
        )
        state.history.append(stats)
        state.iteration = iteration
        return stats
