"""The paper's primary contribution: LACs + double-chase grey wolf optimizer."""

from .analysis import (
    FaninDiff,
    circuit_diff,
    extract_lacs,
    format_convergence,
    format_diff,
    format_pareto_front,
    pareto_front,
)
from .batch import evaluate_batch, group_by_parent
from .dcgwo import DCGWO, DCGWOConfig
from .parallel import (
    ShardDispatcher,
    WorkerCrashError,
    close_dispatcher,
    get_dispatcher,
    resolve_jobs,
)
from .fitness import (
    CircuitEval,
    DepthMode,
    EvalContext,
    evaluate,
    evaluate_incremental,
)
from .protocol import (
    CallbackList,
    IterationEvent,
    Optimizer,
    OptimizerState,
    RunCallback,
)
from .lacs import LAC, applied_copy, apply_lac, is_safe
from .pareto import (
    crowding_distance,
    dominates,
    non_dominated_sort,
    nsga2_select,
)
from .population import (
    NUM_ELITES,
    PopulationDivision,
    decision_parameter,
    divide_population,
    encircling_coefficient,
    fitness_distance,
    scaling_factor,
)
from .relaxation import ErrorRelaxation
from .reproduction import (
    LevelWeights,
    circuit_reproduce,
    pick_superior_partner,
    po_levels,
)
from .result import IterationStats, OptimizationResult
from .searching import (
    circuit_search,
    circuit_simplify,
    collect_targets,
    propose_search_lac,
)
from .simplify import (
    Simplification,
    apply_simplification,
    propose_simplification,
    simplified_copy,
)

__all__ = [
    "FaninDiff",
    "circuit_diff",
    "extract_lacs",
    "format_convergence",
    "format_diff",
    "format_pareto_front",
    "pareto_front",
    "DCGWO",
    "DCGWOConfig",
    "CircuitEval",
    "DepthMode",
    "EvalContext",
    "evaluate",
    "evaluate_incremental",
    "evaluate_batch",
    "group_by_parent",
    "ShardDispatcher",
    "WorkerCrashError",
    "close_dispatcher",
    "get_dispatcher",
    "resolve_jobs",
    "CallbackList",
    "IterationEvent",
    "Optimizer",
    "OptimizerState",
    "RunCallback",
    "LAC",
    "applied_copy",
    "apply_lac",
    "is_safe",
    "crowding_distance",
    "dominates",
    "non_dominated_sort",
    "nsga2_select",
    "NUM_ELITES",
    "PopulationDivision",
    "decision_parameter",
    "divide_population",
    "encircling_coefficient",
    "fitness_distance",
    "scaling_factor",
    "ErrorRelaxation",
    "LevelWeights",
    "circuit_reproduce",
    "pick_superior_partner",
    "po_levels",
    "IterationStats",
    "OptimizationResult",
    "circuit_search",
    "circuit_simplify",
    "Simplification",
    "apply_simplification",
    "propose_simplification",
    "simplified_copy",
    "collect_targets",
    "propose_search_lac",
]
