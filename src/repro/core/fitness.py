"""Circuit fitness evaluation (paper Eq. 8) and the shared eval context.

``Fit(ci) = wd * Depth_ori / Depth_app + wa * Area_ori / Area_app``

Depth is the STA critical-path delay by default (what PrimeTime reports
and what the paper optimises); a unit-depth mode exists for ablations.
An :class:`EvalContext` bundles everything an evaluation needs — library,
STA engine, Monte-Carlo vectors, the accurate circuit's reference outputs
and baselines — so optimizers stay stateless and comparable.

Two evaluation paths produce bit-identical results:

* :func:`evaluate` — full STA + full simulation, always available;
* :func:`evaluate_incremental` — when the circuit carries a valid
  provenance record pointing at an already-evaluated parent, only the
  transitive fan-out cone of the changed gates is resimulated
  (:func:`repro.sim.resimulate_cone`) and retimed
  (:func:`repro.sta.update_timing`), the VECBEE-style trick that makes
  per-candidate evaluation cost proportional to the perturbation rather
  than the circuit.  It falls back to the full path whenever the
  provenance is missing, stale, or no matching parent eval is supplied.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..cells import Library
from ..netlist import Circuit
from ..sim import (
    ErrorMode,
    VectorSet,
    measure_error,
    per_po_error,
    po_words,
    random_vectors,
    resimulate_cone,
    simulate,
)
from ..sim.error import make_unpack_cache
from ..sim.bitsim import ValueMap
from ..sta import STAEngine, TimingReport, update_timing

#: Guard against division by zero on fully-degenerate circuits.
_EPS = 1e-9


class DepthMode(enum.Enum):
    """How ``Depth`` in Eq. 8 is measured."""

    DELAY = "delay"  # STA critical-path delay in ps (paper's metric)
    UNIT = "unit"  # gate levels (ablation)


@dataclass
class EvalContext:
    """Shared state for evaluating approximate circuits of one benchmark."""

    library: Library
    sta: STAEngine
    vectors: VectorSet
    error_mode: ErrorMode
    reference: Circuit
    reference_values: ValueMap
    reference_po: np.ndarray
    depth_ori: float
    area_ori: float
    cpd_ori: float
    reference_report: Optional[TimingReport] = None
    wd: float = 0.8
    depth_mode: DepthMode = DepthMode.DELAY
    _reference_eval: Optional["CircuitEval"] = field(
        default=None, repr=False, compare=False
    )
    #: Per-context memo of the unpacked reference-PO matrix (NMED path).
    #: Owned here — not module-global — so interleaved sessions never
    #: thrash each other's cache.
    _ref_unpack_cache: List[object] = field(
        default_factory=make_unpack_cache, repr=False, compare=False
    )
    #: The attached evaluation lake (:class:`repro.lake.EvalCache`).
    #: Tri-state: an ``EvalCache`` caches batch evaluations across runs,
    #: ``False`` disables caching outright (the ``REPRO_CACHE``
    #: environment is not consulted), ``None`` (default) resolves the
    #: environment lazily on first batch evaluation.
    lake: Optional[object] = field(default=None, repr=False, compare=False)

    @property
    def wa(self) -> float:
        """Area weight; the paper fixes ``wa = 1 - wd``."""
        return 1.0 - self.wd

    def reference_eval(self) -> "CircuitEval":
        """The accurate circuit's own :class:`CircuitEval`, lazily built.

        This is the root parent for incremental evaluation: children
        forked straight from the reference (initial populations, greedy
        loops) resimulate only their changed cones against it.  Rebuilt
        if the reference circuit was mutated since (it never should be).
        """
        ev = self._reference_eval
        if (
            ev is not None
            and ev.circuit is self.reference
            and ev.circuit_version == self.reference.version
        ):
            return ev
        report = self.reference_report
        if (
            report is None
            or report.circuit is not self.reference
            or report.circuit_version != self.reference.version
        ):
            # Object identity alone is not enough: an in-place mutation
            # of the reference leaves ``report.circuit is reference``
            # true while every row in the report is stale.  The report
            # carries the structure version it was computed at exactly
            # so this check can be made.  The simulated baselines go
            # stale together with the report (a logic-changing mutation
            # invalidates reference values, PO words and the unpack
            # memo), so everything derived from the old structure is
            # refreshed in one place.
            report = self.sta.analyze(self.reference)
            self.reference_report = report
            self.reference_values = simulate(self.reference, self.vectors)
            self.reference_po = po_words(self.reference, self.reference_values)
            self._ref_unpack_cache = make_unpack_cache()
            # The Eq. 8 normalizers are baselines of the (new) accurate
            # circuit too — recompute them exactly as ``build`` does so
            # later fitness values match a freshly built context.
            self.depth_ori = (
                report.cpd
                if self.depth_mode is DepthMode.DELAY
                else float(report.max_unit_depth)
            )
            self.area_ori = self.reference.area(self.library)
            self.cpd_ori = report.cpd
        ev = _finish_eval(self, self.reference, report, self.reference_values)
        self._reference_eval = ev
        return ev

    @classmethod
    def build(
        cls,
        circuit: Circuit,
        library: Library,
        error_mode: ErrorMode,
        num_vectors: int = 2048,
        seed: int = 0,
        wd: float = 0.8,
        depth_mode: DepthMode = DepthMode.DELAY,
        vectors: Optional[VectorSet] = None,
        sta: Optional[STAEngine] = None,
    ) -> "EvalContext":
        """Construct a context around one accurate circuit."""
        if not 0.0 <= wd <= 1.0:
            raise ValueError("wd must be in [0, 1]")
        engine = sta or STAEngine(library)
        vecs = vectors or random_vectors(
            len(circuit.pi_ids), num_vectors, seed
        )
        report = engine.analyze(circuit)
        values = simulate(circuit, vecs)
        depth_ori = (
            report.cpd
            if depth_mode is DepthMode.DELAY
            else float(report.max_unit_depth)
        )
        return cls(
            library=library,
            sta=engine,
            vectors=vecs,
            error_mode=error_mode,
            reference=circuit,
            reference_values=values,
            reference_po=po_words(circuit, values),
            depth_ori=depth_ori,
            area_ori=circuit.area(library),
            cpd_ori=report.cpd,
            reference_report=report,
            wd=wd,
            depth_mode=depth_mode,
        )


@dataclass
class CircuitEval:
    """A fully-evaluated approximate circuit.

    ``fd`` and ``fa`` are the paper's depth/area objective functions
    (``Depth_ori/Depth_app`` and ``Area_ori/Area_app``); ``fitness`` is
    their Eq. 8 weighted sum.  Larger is better for all three.
    """

    circuit: Circuit
    report: TimingReport
    values: ValueMap
    depth: float
    area: float
    error: float
    per_po_error: List[float]
    fd: float
    fa: float
    fitness: float
    #: Structure version of ``circuit`` at evaluation time; incremental
    #: evaluation refuses a parent eval whose circuit mutated since.
    circuit_version: int = 0

    @property
    def cpd(self) -> float:
        """Critical-path delay of this circuit (ps)."""
        return self.report.cpd


def _finish_eval(
    ctx: EvalContext,
    circuit: Circuit,
    report: TimingReport,
    values: ValueMap,
) -> CircuitEval:
    """Shared metric tail: error + area + Eq. 8 from report and values.

    Both evaluation paths funnel through here so their outputs are
    computed by the exact same float operations.  Consumes the circuit's
    provenance record (sets it to ``None``) — once evaluated, the eval
    itself is the parent future children derive from, and dropping the
    record releases the reference chain to older ancestors.
    """
    app_po = po_words(circuit, values)
    nv = ctx.vectors.num_vectors
    error = measure_error(
        ctx.error_mode,
        ctx.reference_po,
        app_po,
        nv,
        ref_cache=ctx._ref_unpack_cache,
    )
    po_errors = per_po_error(ctx.error_mode, ctx.reference_po, app_po, nv)
    depth = (
        report.cpd
        if ctx.depth_mode is DepthMode.DELAY
        else float(report.max_unit_depth)
    )
    area = circuit.area(ctx.library)
    fd = ctx.depth_ori / max(depth, _EPS)
    fa = ctx.area_ori / max(area, _EPS)
    fitness = ctx.wd * fd + ctx.wa * fa
    circuit.provenance = None
    return CircuitEval(
        circuit=circuit,
        report=report,
        values=values,
        depth=depth,
        area=area,
        error=error,
        per_po_error=po_errors,
        fd=fd,
        fa=fa,
        fitness=fitness,
        circuit_version=circuit.version,
    )


def evaluate(ctx: EvalContext, circuit: Circuit) -> CircuitEval:
    """STA + simulation + error + Eq. 8 fitness for one circuit."""
    report = ctx.sta.analyze(circuit)
    values = simulate(circuit, ctx.vectors)
    return _finish_eval(ctx, circuit, report, values)


#: What optimizers may pass as the parent(s) of a candidate evaluation.
ParentEvals = Union["CircuitEval", Sequence["CircuitEval"], None]


def _match_parent(
    circuit: Circuit, parents: Iterable[CircuitEval]
) -> Optional[Tuple["CircuitEval", FrozenSet[int]]]:
    """Find the parent eval the circuit's provenance record points at."""
    prov = circuit.valid_provenance()
    if prov is None:
        return None
    for parent in parents:
        if parent is None:
            continue
        if (
            prov.parent is parent.circuit
            and prov.parent_version == parent.circuit_version
        ):
            return parent, prov.changed
    return None


def evaluate_incremental(
    ctx: EvalContext, circuit: Circuit, parent_eval: ParentEvals = None
) -> CircuitEval:
    """Cone-limited evaluation against an already-evaluated parent.

    ``parent_eval`` may be a single :class:`CircuitEval` or a sequence of
    candidates (e.g. both reproduction parents); the one matching the
    circuit's provenance record is used.  Only the transitive fan-out of
    the changed gates is resimulated and retimed — results are
    bit-identical to :func:`evaluate` (pinned by property tests).  Falls
    back to the full path when no valid parent is available.
    """
    if parent_eval is None:
        parents: Sequence[CircuitEval] = ()
    elif isinstance(parent_eval, CircuitEval):
        parents = (parent_eval,)
    else:
        parents = tuple(parent_eval)
    match = _match_parent(circuit, parents)
    if match is None:
        return evaluate(ctx, circuit)
    parent, changed = match
    # A copy-then-mutate child shares the parent's gate-ID set, so the
    # dirty cone computed on the parent's memoized fan-out map equals
    # the child's (changed gates are seeds; edges into unchanged gates
    # are identical in both) — the child never builds its own O(V+E)
    # fan-out map just to find its cone.
    pc = parent.circuit
    dirty = None
    if circuit.same_gid_set(pc):
        dirty = set()
        for gid in changed:
            if gid >= 0:
                dirty |= pc.transitive_fanout(gid, include_self=True)
    values = resimulate_cone(
        circuit, ctx.vectors, parent.values, changed, dirty=dirty
    )
    report = update_timing(ctx.sta, circuit, parent.report, changed)
    return _finish_eval(ctx, circuit, report, values)
