"""Circuit fitness evaluation (paper Eq. 8) and the shared eval context.

``Fit(ci) = wd * Depth_ori / Depth_app + wa * Area_ori / Area_app``

Depth is the STA critical-path delay by default (what PrimeTime reports
and what the paper optimises); a unit-depth mode exists for ablations.
An :class:`EvalContext` bundles everything an evaluation needs — library,
STA engine, Monte-Carlo vectors, the accurate circuit's reference outputs
and baselines — so optimizers stay stateless and comparable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..cells import Library
from ..netlist import Circuit
from ..sim import (
    ErrorMode,
    VectorSet,
    measure_error,
    per_po_error,
    po_words,
    random_vectors,
    simulate,
)
from ..sim.bitsim import ValueMap
from ..sta import STAEngine, TimingReport

#: Guard against division by zero on fully-degenerate circuits.
_EPS = 1e-9


class DepthMode(enum.Enum):
    """How ``Depth`` in Eq. 8 is measured."""

    DELAY = "delay"  # STA critical-path delay in ps (paper's metric)
    UNIT = "unit"  # gate levels (ablation)


@dataclass
class EvalContext:
    """Shared state for evaluating approximate circuits of one benchmark."""

    library: Library
    sta: STAEngine
    vectors: VectorSet
    error_mode: ErrorMode
    reference: Circuit
    reference_values: ValueMap
    reference_po: np.ndarray
    depth_ori: float
    area_ori: float
    cpd_ori: float
    wd: float = 0.8
    depth_mode: DepthMode = DepthMode.DELAY

    @property
    def wa(self) -> float:
        """Area weight; the paper fixes ``wa = 1 - wd``."""
        return 1.0 - self.wd

    @classmethod
    def build(
        cls,
        circuit: Circuit,
        library: Library,
        error_mode: ErrorMode,
        num_vectors: int = 2048,
        seed: int = 0,
        wd: float = 0.8,
        depth_mode: DepthMode = DepthMode.DELAY,
        vectors: Optional[VectorSet] = None,
        sta: Optional[STAEngine] = None,
    ) -> "EvalContext":
        """Construct a context around one accurate circuit."""
        if not 0.0 <= wd <= 1.0:
            raise ValueError("wd must be in [0, 1]")
        engine = sta or STAEngine(library)
        vecs = vectors or random_vectors(
            len(circuit.pi_ids), num_vectors, seed
        )
        report = engine.analyze(circuit)
        values = simulate(circuit, vecs)
        depth_ori = (
            report.cpd
            if depth_mode is DepthMode.DELAY
            else float(report.max_unit_depth)
        )
        return cls(
            library=library,
            sta=engine,
            vectors=vecs,
            error_mode=error_mode,
            reference=circuit,
            reference_values=values,
            reference_po=po_words(circuit, values),
            depth_ori=depth_ori,
            area_ori=circuit.area(library),
            cpd_ori=report.cpd,
            wd=wd,
            depth_mode=depth_mode,
        )


@dataclass
class CircuitEval:
    """A fully-evaluated approximate circuit.

    ``fd`` and ``fa`` are the paper's depth/area objective functions
    (``Depth_ori/Depth_app`` and ``Area_ori/Area_app``); ``fitness`` is
    their Eq. 8 weighted sum.  Larger is better for all three.
    """

    circuit: Circuit
    report: TimingReport
    values: ValueMap
    depth: float
    area: float
    error: float
    per_po_error: List[float]
    fd: float
    fa: float
    fitness: float

    @property
    def cpd(self) -> float:
        """Critical-path delay of this circuit (ps)."""
        return self.report.cpd


def evaluate(ctx: EvalContext, circuit: Circuit) -> CircuitEval:
    """STA + simulation + error + Eq. 8 fitness for one circuit."""
    report = ctx.sta.analyze(circuit)
    values = simulate(circuit, ctx.vectors)
    app_po = po_words(circuit, values)
    nv = ctx.vectors.num_vectors
    error = measure_error(ctx.error_mode, ctx.reference_po, app_po, nv)
    po_errors = per_po_error(ctx.error_mode, ctx.reference_po, app_po, nv)
    depth = (
        report.cpd
        if ctx.depth_mode is DepthMode.DELAY
        else float(report.max_unit_depth)
    )
    area = circuit.area(ctx.library)
    fd = ctx.depth_ori / max(depth, _EPS)
    fa = ctx.area_ori / max(area, _EPS)
    fitness = ctx.wd * fd + ctx.wa * fa
    return CircuitEval(
        circuit=circuit,
        report=report,
        values=values,
        depth=depth,
        area=area,
        error=error,
        per_po_error=po_errors,
        fd=fd,
        fa=fa,
        fitness=fitness,
    )
