"""Post-run analysis: LAC traces, Pareto fronts, convergence tables.

Everything a user needs to understand *what the optimizer actually did*
to a circuit: which substitutions differentiate the approximate netlist
from the accurate one, where the surviving population sits in the
(fd, fa) objective plane, and how the best member improved per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..netlist import Circuit
from .fitness import CircuitEval
from .lacs import LAC
from .pareto import non_dominated_sort
from .result import OptimizationResult


@dataclass(frozen=True)
class FaninDiff:
    """One gate whose fan-in tuple differs between two circuits."""

    gate: int
    cell: str
    before: Tuple[int, ...]
    after: Tuple[int, ...]

    def substitutions(self) -> List[Tuple[int, int]]:
        """Positional (old, new) fan-in pairs that changed."""
        return [
            (b, a)
            for b, a in zip(self.before, self.after)
            if b != a
        ]


def circuit_diff(accurate: Circuit, approx: Circuit) -> List[FaninDiff]:
    """Fan-in level diff between an accurate circuit and its descendant.

    Both circuits must share the gate ID space (which every optimizer in
    this package preserves).  Gates deleted by post-optimization are
    reported with ``after=()``.
    """
    diffs: List[FaninDiff] = []
    for gid in sorted(accurate.fanins):
        before = accurate.fanins[gid]
        after = approx.fanins.get(gid, ())
        if before != after:
            diffs.append(
                FaninDiff(
                    gate=gid,
                    cell=accurate.cells[gid],
                    before=before,
                    after=after,
                )
            )
    return diffs


def extract_lacs(accurate: Circuit, approx: Circuit) -> List[LAC]:
    """Recover the effective LAC list from a diff.

    Each changed fan-in slot (old -> new) corresponds to one wire
    substitution; duplicates (the same old gate redirected to the same
    switch in several consumers) collapse to a single LAC, matching how
    ``Circuit.substitute`` fans a single change out.
    """
    seen: Dict[Tuple[int, int], None] = {}
    for diff in circuit_diff(accurate, approx):
        if not diff.after:
            continue  # deleted gate, not a substitution
        for old, new in diff.substitutions():
            seen.setdefault((old, new), None)
    return [LAC(target=t, switch=s) for (t, s) in seen]


def format_diff(accurate: Circuit, approx: Circuit) -> str:
    """Human-readable substitution trace."""
    lines = [f"diff {accurate.name} -> {approx.name}:"]
    for diff in circuit_diff(accurate, approx):
        if not diff.after:
            lines.append(f"  U{diff.gate} ({diff.cell}) deleted")
            continue
        for old, new in diff.substitutions():
            src = "const0" if new == -1 else (
                "const1" if new == -2 else f"U{new}"
            )
            lines.append(
                f"  U{diff.gate} ({diff.cell}): fan-in U{old} -> {src}"
            )
    if len(lines) == 1:
        lines.append("  (identical)")
    return "\n".join(lines)


def pareto_front(population: Sequence[CircuitEval]) -> List[CircuitEval]:
    """The rank-0 members of a final population in the (fd, fa) plane."""
    if not population:
        return []
    points = [(ev.fd, ev.fa) for ev in population]
    fronts = non_dominated_sort(points)
    front = [population[i] for i in fronts[0]]
    front.sort(key=lambda ev: (-ev.fd, -ev.fa))
    return front


def format_pareto_front(population: Sequence[CircuitEval]) -> str:
    """Render the final front as a text table."""
    rows = [f"{'fd':>8}{'fa':>8}{'fitness':>9}{'error':>9}{'CPD':>10}"]
    for ev in pareto_front(population):
        rows.append(
            f"{ev.fd:>8.4f}{ev.fa:>8.4f}{ev.fitness:>9.4f}"
            f"{ev.error:>9.5f}{ev.cpd:>10.2f}"
        )
    return "\n".join(rows)


def format_convergence(result: OptimizationResult) -> str:
    """Render per-iteration best fitness/objectives as a text table."""
    rows = [
        f"{'iter':>5}{'fitness':>9}{'fd':>8}{'fa':>8}"
        f"{'error':>9}{'constraint':>11}{'evals':>7}"
    ]
    for h in result.history:
        rows.append(
            f"{h.iteration:>5}{h.best_fitness:>9.4f}{h.best_fd:>8.4f}"
            f"{h.best_fa:>8.4f}{h.best_error:>9.5f}"
            f"{h.error_constraint:>11.5f}{h.evaluations:>7}"
        )
    return "\n".join(rows)
