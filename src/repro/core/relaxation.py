"""Asymptotic error-constraint relaxation (paper §III-B, last paragraph).

The error constraint is tightened at iteration 0 and relaxed along a
quadratic schedule

    Error_cons(iter) = b * iter**2 + Error_cons(0)

reaching the user-specified bound at ``Imax``.  Starting tight keeps the
early population away from the error boundary, which the paper credits
with avoiding premature convergence into local optima.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ErrorRelaxation:
    """Quadratic error-constraint schedule.

    Attributes:
        final: the user-specified maximum error constraint.
        imax: iteration at which the schedule reaches ``final``.
        start_fraction: ``Error_cons(0) / final``.
    """

    final: float
    imax: int
    start_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.final < 0.0:
            raise ValueError("error bound must be non-negative")
        if self.imax < 1:
            raise ValueError("imax must be positive")
        if not 0.0 <= self.start_fraction <= 1.0:
            raise ValueError("start fraction must be in [0, 1]")

    @property
    def initial(self) -> float:
        """``Error_cons(0)``."""
        return self.final * self.start_fraction

    @property
    def b(self) -> float:
        """The quadratic coefficient that lands on ``final`` at ``imax``."""
        return (self.final - self.initial) / float(self.imax**2)

    def at(self, iteration: int) -> float:
        """Constraint in force during ``iteration`` (clamped at final)."""
        if iteration < 0:
            raise ValueError("iteration must be non-negative")
        value = self.b * float(iteration**2) + self.initial
        return min(value, self.final)
