"""Non-dominated sorting and crowding distance (NSGA-II style selection).

The population update of the paper (§III-B, "Circuit Population Update")
ranks the candidate group by Pareto dominance on the two maximised
objectives ``fd = Depth_ori/Depth_app`` and ``fa = Area_ori/Area_app``,
computes crowding distance inside each front (Eq. 9), and fills the next
population front by front, most-crowded-out first.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

Point = Tuple[float, float]


def dominates(a: Point, b: Point) -> bool:
    """True when ``a`` Pareto-dominates ``b`` (maximising both axes)."""
    return a[0] >= b[0] and a[1] >= b[1] and (a[0] > b[0] or a[1] > b[1])


def non_dominated_sort(points: Sequence[Point]) -> List[List[int]]:
    """Partition indices into Pareto fronts, rank 0 first.

    The deletion-based scheme the paper describes: maintain each point's
    dominator count, peel off the zero-count set, decrement, repeat.
    """
    n = len(points)
    dominated_by: List[int] = [0] * n  # |Ld|: how many points dominate i
    dominates_list: List[List[int]] = [[] for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            if dominates(points[i], points[j]):
                dominates_list[i].append(j)
                dominated_by[j] += 1
            elif dominates(points[j], points[i]):
                dominates_list[j].append(i)
                dominated_by[i] += 1
    fronts: List[List[int]] = []
    current = [i for i in range(n) if dominated_by[i] == 0]
    while current:
        fronts.append(current)
        nxt: List[int] = []
        for i in current:
            for j in dominates_list[i]:
                dominated_by[j] -= 1
                if dominated_by[j] == 0:
                    nxt.append(j)
        current = nxt
    return fronts


def crowding_distance(
    points: Sequence[Point], front: Sequence[int]
) -> Dict[int, float]:
    """Eq. 9 crowding distance of each index in one front.

    Boundary points on each objective get ``+inf``; interior points sum
    the normalised gap between their neighbours over both objectives.
    """
    dist: Dict[int, float] = {i: 0.0 for i in front}
    if len(front) <= 2:
        return {i: math.inf for i in front}
    for axis in (0, 1):
        ordered = sorted(front, key=lambda i: points[i][axis])
        lo = points[ordered[0]][axis]
        hi = points[ordered[-1]][axis]
        span = hi - lo
        dist[ordered[0]] = math.inf
        dist[ordered[-1]] = math.inf
        if span <= 0.0:
            continue
        for k in range(1, len(ordered) - 1):
            prev_v = points[ordered[k - 1]][axis]
            next_v = points[ordered[k + 1]][axis]
            if not math.isinf(dist[ordered[k]]):
                dist[ordered[k]] += (next_v - prev_v) / span
    return dist


def nsga2_select(points: Sequence[Point], count: int) -> List[int]:
    """Select ``count`` indices: front by front, crowded-descending within.

    Returns fewer than ``count`` when there are fewer points.
    """
    selected: List[int] = []
    for front in non_dominated_sort(points):
        dist = crowding_distance(points, front)
        ordered = sorted(front, key=lambda i: (-dist[i], i))
        for i in ordered:
            if len(selected) == count:
                return selected
            selected.append(i)
    return selected
