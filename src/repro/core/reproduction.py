"""The circuit-reproduction approximate action (paper §III-B, Fig. 5).

Reproduction crosses over two approximate circuits at PO granularity:
each primary output's cone (the PO-TFI pair) is scored with the Level
function (Eq. 3)

    Level(PO_i) = wt / Ta(PO_i) + we / Error(PO_i)

and the child takes each PO's cone from whichever parent scores higher.
Gates shared between cones accept adjacency information only from the
first write-in (cones are written in descending Level order); gates in no
selected cone are filled from the fitter parent so the child is complete.

All population members share the accurate circuit's gate ID space and
preserve its topological order (see ``core.lacs``), so any cone mixture
is acyclic by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..netlist import Circuit
from ..sta.store import timing_index
from .fitness import CircuitEval, EvalContext

#: Error floor: half an LSB of what the Monte-Carlo batch can resolve.
def _error_floor(num_vectors: int) -> float:
    return 0.5 / num_vectors


@dataclass(frozen=True)
class LevelWeights:
    """Weights of the PO-TFI pair evaluation function (Eq. 3).

    The paper sets ``wt = 0.9 * CPD_ori`` (so the timing term is O(1) for
    paths near the accurate critical delay) and ``we = 0.1`` under ER /
    ``0.2`` under NMED constraints.
    """

    wt: float
    we: float

    @classmethod
    def paper_defaults(cls, ctx: EvalContext) -> "LevelWeights":
        """§IV-A settings: wt = 0.9 CPD_ori; we = 0.1 (ER) / 0.2 (NMED)."""
        from ..sim import ErrorMode

        we = 0.1 if ctx.error_mode is ErrorMode.ER else 0.2
        return cls(wt=0.9 * ctx.cpd_ori, we=we)


def po_levels(
    ev: CircuitEval, ctx: EvalContext, weights: LevelWeights
) -> Dict[int, float]:
    """Eq. 3 Level score for every PO of one evaluated circuit."""
    floor = _error_floor(ctx.vectors.num_vectors)
    # POs driven by constants/PIs arrive at ~0; floor Ta at 1% of the
    # accurate CPD so the timing term saturates instead of exploding and
    # drowning out the error term.
    ta_floor = 0.01 * ctx.cpd_ori
    levels: Dict[int, float] = {}
    for idx, po in enumerate(ev.circuit.po_ids):
        ta = max(ev.report.po_arrival(po), ta_floor, 1e-9)
        err = max(ev.per_po_error[idx], floor)
        levels[po] = weights.wt / ta + weights.we / err
    return levels


class POCones:
    """Per-PO TFI reachability of one circuit as dense bool masks.

    ``masks`` is ``(index.n, num_pos)`` bool laid out by the shared
    sorted-gid row numbering (:func:`repro.sta.store.timing_index`):
    ``masks[r, p]`` is True when the gate on row ``r`` belongs to PO
    ``p``'s cone (the PO itself included — exactly
    ``transitive_fanin(po, include_self=True)`` minus constants).
    Memoized per circuit structure version; the reproduction operator
    intersects these masks instead of walking frozensets per PO, which
    is the crossover cone-write cost the ROADMAP flagged.
    """

    __slots__ = ("index", "masks", "po_slot", "_sets")

    def __init__(self, index, masks: np.ndarray, po_slot: Dict[int, int]):
        self.index = index
        self.masks = masks
        self.po_slot = po_slot
        self._sets: Dict[int, frozenset] = {}

    def mask(self, po: int) -> np.ndarray:
        """Bool row mask of ``po``'s cone (a column view; read-only)."""
        return self.masks[:, self.po_slot[po]]

    def cone(self, po: int) -> frozenset:
        """The cone as a gate-ID frozenset — the historical set-based
        API, materialized lazily from the mask for existing callers."""
        cached = self._sets.get(po)
        if cached is None:
            gids = self.index.gids
            cached = frozenset(
                int(gids[r]) for r in np.flatnonzero(self.mask(po))
            )
            self._sets[po] = cached
        return cached


def po_cones(circuit: Circuit) -> POCones:
    """The circuit's :class:`POCones`, memoized per structure version.

    Built with one reverse-topological sweep that ORs each gate's mask
    row into its fan-ins — O(V · num_pos / 8) bytes of work instead of
    one set-walk per PO.
    """
    cached = circuit._cached("po_cones")
    if cached is not None:
        return cached
    index = timing_index(circuit)
    row = index.row
    fanins = circuit.fanins
    po_ids = circuit.po_ids
    po_slot = {po: p for p, po in enumerate(po_ids)}
    masks = np.zeros((index.n, len(po_ids)), dtype=bool)
    for po in po_ids:
        masks[row[po], po_slot[po]] = True
    if circuit.gid_order_topo():
        # Rows are sorted gate IDs = a topological order here, so the
        # sweep walks rows descending without building the topo order.
        gids = index.gids
        for r in range(index.n - 1, -1, -1):
            m = masks[r]
            if m.any():
                for fi in fanins[int(gids[r])]:
                    if fi >= 0:
                        fr = row[fi]
                        np.logical_or(masks[fr], m, out=masks[fr])
    else:
        for gid in reversed(circuit.topological_order()):
            m = masks[row[gid]]
            if m.any():
                for fi in fanins[gid]:
                    if fi >= 0:
                        fr = row[fi]
                        np.logical_or(masks[fr], m, out=masks[fr])
    return circuit._store("po_cones", POCones(index, masks, po_slot))


def circuit_reproduce(
    ev_a: CircuitEval,
    ev_b: CircuitEval,
    ctx: EvalContext,
    weights: Optional[LevelWeights] = None,
) -> Circuit:
    """Cross two evaluated circuits into a reproduced child.

    Both parents must be population members derived from the same
    accurate circuit (identical gate ID space and port lists).
    """
    if ev_a.circuit.po_ids != ev_b.circuit.po_ids:
        raise ValueError("parents expose different PO sets")
    weights = weights or LevelWeights.paper_defaults(ctx)
    levels_a = po_levels(ev_a, ctx, weights)
    levels_b = po_levels(ev_b, ctx, weights)

    # Fill every gate from the fitter parent first; selected cones then
    # overwrite so un-coned (dangling) gates stay complete, matching the
    # paper's completeness rule for gates outside every PO-TFI pair.
    base, other = (
        (ev_a, ev_b) if ev_a.fitness >= ev_b.fitness else (ev_b, ev_a)
    )
    child = base.circuit.copy()

    # Choose the parent per PO and write cones in descending Level order:
    # shared gates accept adjacency only from the first write-in.
    choices: List[Tuple[float, int, Circuit]] = []
    for po in child.po_ids:
        if levels_a[po] >= levels_b[po]:
            choices.append((levels_a[po], po, ev_a.circuit))
        else:
            choices.append((levels_b[po], po, ev_b.circuit))
    choices.sort(key=lambda item: (-item[0], item[1]))

    changed: set = set()
    base_version = child.version
    writes = 0
    ca, cb = ev_a.circuit, ev_b.circuit
    if ca.fanins.keys() == cb.fanins.keys():
        # Same gate-ID set (every population pair): both parents' cone
        # masks share one row numbering, so first-write-wins reduces to
        # `mask & ~written` per PO instead of a frozenset walk — only
        # the genuinely new rows of each cone are ever visited.  The
        # write set (and therefore the child and its provenance) is
        # identical to the set-based walk: write order within one cone
        # cannot matter, every write reads the same parent.
        cones = {id(ca): po_cones(ca), id(cb): po_cones(cb)}
        gids = cones[id(ca)].index.gids
        written_mask = np.zeros(len(gids), dtype=bool)
        for _, po, parent in choices:
            mask = cones[id(parent)].mask(po)
            fresh = mask & ~written_mask
            written_mask |= mask
            for r in np.flatnonzero(fresh):
                gid = int(gids[r])
                # Skip no-op writes: the child starts as a copy of
                # ``base``, so a differing current value means "differs
                # from base" — exactly the changed set incremental
                # evaluation needs (and skipping identical writes
                # avoids needless cache churn).
                if child.fanins[gid] != parent.fanins[gid]:
                    child.fanins[gid] = parent.fanins[gid]
                    changed.add(gid)
                    writes += 1
                if (
                    not child.is_po(gid)
                    and child.cells[gid] != parent.cells[gid]
                ):
                    child.cells[gid] = parent.cells[gid]
                    changed.add(gid)
                    writes += 1
    else:
        # Gate-ID sets diverged (outside the population protocol): keep
        # the historical per-PO set walk over the memoized TFI cones.
        written: set = set()
        for _, po, parent in choices:
            for gid in parent.transitive_fanin(po, include_self=True):
                if gid in written:
                    continue
                written.add(gid)
                if child.fanins[gid] != parent.fanins[gid]:
                    child.fanins[gid] = parent.fanins[gid]
                    changed.add(gid)
                    writes += 1
                if (
                    not child.is_po(gid)
                    and child.cells[gid] != parent.cells[gid]
                ):
                    child.cells[gid] = parent.cells[gid]
                    changed.add(gid)
                    writes += 1
    child.extend_provenance(changed, base_version, writes)
    return child


def pick_superior_partner(
    population: List[CircuitEval],
    ev: CircuitEval,
    rng: random.Random,
) -> Optional[CircuitEval]:
    """A random strictly-fitter population member to reproduce with."""
    better = [p for p in population if p.fitness > ev.fitness]
    if not better:
        return None
    return better[rng.randrange(len(better))]
