"""The circuit-reproduction approximate action (paper §III-B, Fig. 5).

Reproduction crosses over two approximate circuits at PO granularity:
each primary output's cone (the PO-TFI pair) is scored with the Level
function (Eq. 3)

    Level(PO_i) = wt / Ta(PO_i) + we / Error(PO_i)

and the child takes each PO's cone from whichever parent scores higher.
Gates shared between cones accept adjacency information only from the
first write-in (cones are written in descending Level order); gates in no
selected cone are filled from the fitter parent so the child is complete.

All population members share the accurate circuit's gate ID space and
preserve its topological order (see ``core.lacs``), so any cone mixture
is acyclic by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..netlist import Circuit
from .fitness import CircuitEval, EvalContext

#: Error floor: half an LSB of what the Monte-Carlo batch can resolve.
def _error_floor(num_vectors: int) -> float:
    return 0.5 / num_vectors


@dataclass(frozen=True)
class LevelWeights:
    """Weights of the PO-TFI pair evaluation function (Eq. 3).

    The paper sets ``wt = 0.9 * CPD_ori`` (so the timing term is O(1) for
    paths near the accurate critical delay) and ``we = 0.1`` under ER /
    ``0.2`` under NMED constraints.
    """

    wt: float
    we: float

    @classmethod
    def paper_defaults(cls, ctx: EvalContext) -> "LevelWeights":
        """§IV-A settings: wt = 0.9 CPD_ori; we = 0.1 (ER) / 0.2 (NMED)."""
        from ..sim import ErrorMode

        we = 0.1 if ctx.error_mode is ErrorMode.ER else 0.2
        return cls(wt=0.9 * ctx.cpd_ori, we=we)


def po_levels(
    ev: CircuitEval, ctx: EvalContext, weights: LevelWeights
) -> Dict[int, float]:
    """Eq. 3 Level score for every PO of one evaluated circuit."""
    floor = _error_floor(ctx.vectors.num_vectors)
    # POs driven by constants/PIs arrive at ~0; floor Ta at 1% of the
    # accurate CPD so the timing term saturates instead of exploding and
    # drowning out the error term.
    ta_floor = 0.01 * ctx.cpd_ori
    levels: Dict[int, float] = {}
    for idx, po in enumerate(ev.circuit.po_ids):
        ta = max(ev.report.po_arrival(po), ta_floor, 1e-9)
        err = max(ev.per_po_error[idx], floor)
        levels[po] = weights.wt / ta + weights.we / err
    return levels


def circuit_reproduce(
    ev_a: CircuitEval,
    ev_b: CircuitEval,
    ctx: EvalContext,
    weights: Optional[LevelWeights] = None,
) -> Circuit:
    """Cross two evaluated circuits into a reproduced child.

    Both parents must be population members derived from the same
    accurate circuit (identical gate ID space and port lists).
    """
    if ev_a.circuit.po_ids != ev_b.circuit.po_ids:
        raise ValueError("parents expose different PO sets")
    weights = weights or LevelWeights.paper_defaults(ctx)
    levels_a = po_levels(ev_a, ctx, weights)
    levels_b = po_levels(ev_b, ctx, weights)

    # Fill every gate from the fitter parent first; selected cones then
    # overwrite so un-coned (dangling) gates stay complete, matching the
    # paper's completeness rule for gates outside every PO-TFI pair.
    base, other = (
        (ev_a, ev_b) if ev_a.fitness >= ev_b.fitness else (ev_b, ev_a)
    )
    child = base.circuit.copy()

    # Choose the parent per PO and write cones in descending Level order:
    # shared gates accept adjacency only from the first write-in.
    choices: List[Tuple[float, int, Circuit]] = []
    for po in child.po_ids:
        if levels_a[po] >= levels_b[po]:
            choices.append((levels_a[po], po, ev_a.circuit))
        else:
            choices.append((levels_b[po], po, ev_b.circuit))
    choices.sort(key=lambda item: (-item[0], item[1]))

    written: set = set()
    changed: set = set()
    base_version = child.version
    writes = 0
    for _, po, parent in choices:
        for gid in parent.transitive_fanin(po, include_self=True):
            if gid in written:
                continue
            written.add(gid)
            # Skip no-op writes: the child starts as a copy of ``base``,
            # so a differing current value means "differs from base" —
            # exactly the changed set incremental evaluation needs (and
            # skipping identical writes avoids needless cache churn).
            if child.fanins[gid] != parent.fanins[gid]:
                child.fanins[gid] = parent.fanins[gid]
                changed.add(gid)
                writes += 1
            if not child.is_po(gid) and child.cells[gid] != parent.cells[gid]:
                child.cells[gid] = parent.cells[gid]
                changed.add(gid)
                writes += 1
    child.extend_provenance(changed, base_version, writes)
    return child


def pick_superior_partner(
    population: List[CircuitEval],
    ev: CircuitEval,
    rng: random.Random,
) -> Optional[CircuitEval]:
    """A random strictly-fitter population member to reproduce with."""
    better = [p for p in population if p.fitness > ev.fitness]
    if not better:
        return None
    return better[rng.randrange(len(better))]
