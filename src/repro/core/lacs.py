"""Local approximate changes (LACs): wire-by-wire and wire-by-constant.

Both LACs reduce to the same fan-in rewrite on the adjacency lists
(paper Fig. 1 / §III-A): every consumer of the *target gate* is re-pointed
at the *switch gate*, where the switch is an existing gate from the
target's transitive fan-in (wire-by-wire) or a constant '0'/'1'
(wire-by-constant).

Safety invariant: because switches are drawn from the target's TFI (or
are constants), every circuit in a population preserves the topological
order of the original accurate circuit, so *any* mixture of fan-in
entries taken from different population members is also acyclic.  Circuit
reproduction relies on this; a property test pins it down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..netlist import Circuit, is_const


@dataclass(frozen=True)
class LAC:
    """One local approximate change.

    Attributes:
        target: gate whose output is disconnected from its consumers.
        switch: gate (or ``CONST0``/``CONST1``) wired in its place.
    """

    target: int
    switch: int

    @property
    def kind(self) -> str:
        """``"wire-by-constant"`` or ``"wire-by-wire"``."""
        return "wire-by-constant" if is_const(self.switch) else "wire-by-wire"

    def __str__(self) -> str:
        return f"{self.kind}({self.target} -> {self.switch})"


def is_safe(circuit: Circuit, lac: LAC) -> bool:
    """Check that applying ``lac`` cannot create a loop or dangle a PO.

    A substitution is safe when the switch is a constant or lies outside
    the target's transitive fan-out (the TFI always qualifies).
    """
    if lac.target == lac.switch or is_const(lac.target):
        return False
    if lac.target not in circuit.fanins:
        return False
    if circuit.is_po(lac.target):
        return False
    if is_const(lac.switch):
        return True
    if lac.switch not in circuit.fanins or circuit.is_po(lac.switch):
        return False
    return lac.switch not in circuit.transitive_fanout(
        lac.target, include_self=True
    )


def apply_lac(circuit: Circuit, lac: LAC) -> List[int]:
    """Apply ``lac`` in place; returns the rewritten consumer gate IDs.

    Raises ``ValueError`` for unsafe changes — the optimizer filters with
    :func:`is_safe` first, so hitting this indicates a logic error.
    """
    if not is_safe(circuit, lac):
        raise ValueError(f"unsafe LAC {lac}")
    return circuit.substitute(lac.target, lac.switch)


def applied_copy(circuit: Circuit, lac: LAC, name: Optional[str] = None) -> Circuit:
    """Copy-and-apply convenience used when forking population members.

    The child carries a provenance record whose ``changed`` set is the
    rewritten consumer gates (merged with any delta the source circuit
    already carried), enabling cone-limited incremental evaluation.
    """
    child = circuit.copy(name)
    base_version = child.version
    rewritten = apply_lac(child, lac)
    # substitute() performs exactly one fan-in write per rewritten gate.
    child.extend_provenance(rewritten, base_version, len(rewritten))
    return child
