"""Result containers shared by DCGWO and every baseline optimizer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .fitness import CircuitEval


@dataclass(frozen=True)
class IterationStats:
    """One row of an optimizer's convergence history."""

    iteration: int
    best_fitness: float
    best_fd: float
    best_fa: float
    best_error: float
    error_constraint: float
    evaluations: int


@dataclass
class OptimizationResult:
    """Outcome of one optimization run.

    ``best`` is the best error-feasible evaluated circuit found anywhere
    during the run (not merely in the final population).  A paused run
    (``Optimizer.optimize(stop_after=...)``) returns a partial result
    with ``completed=False``; ``best`` may then still be ``None``.
    """

    method: str
    best: CircuitEval
    population: List[CircuitEval] = field(default_factory=list)
    history: List[IterationStats] = field(default_factory=list)
    evaluations: int = 0
    runtime_s: float = 0.0
    completed: bool = True

    @property
    def best_circuit(self):
        """Shorthand for the archived best circuit."""
        return self.best.circuit
