"""End-to-end timing-driven ALS flow (the paper's Problem 1).

Given a post-synthesis netlist: run an approximate optimizer (DCGWO or
any baseline) under an error constraint, then post-optimize under an
area constraint, and report the final critical-path-delay ratio

    Ratio_cpd = CPD_fac / CPD_ori

which is the headline metric of Tables II/III and Figs. 6-8.  Every
method flows through the same evaluation context and the same
post-optimization, exactly as the paper's experimental setup prescribes
("all final generated circuits experience post-optimization under
Area_con").
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from .baselines import (
    GWOConfig,
    HedalsConfig,
    HedalsLike,
    SasimiConfig,
    SingleChaseGWO,
    VaACS,
    VaacsConfig,
    VecbeeSasimi,
)
from .cells import Library, default_library
from .core import DCGWO, DCGWOConfig, DepthMode, EvalContext
from .core.result import OptimizationResult
from .netlist import Circuit
from .postopt import PostOptResult, post_optimize
from .sim import ErrorMode

#: Paper column names for every implemented method.
METHOD_NAMES = ("VECBEE-S", "VaACS", "HEDALS", "GWO", "Ours")


@dataclass
class FlowConfig:
    """Knobs of one flow run.

    ``effort`` scales every optimizer's budget uniformly: 1.0 is the
    paper's setting (N=30, Imax=20 class); smaller values shrink the
    population/iteration/greedy-round budgets proportionally so sweeps
    finish in CI time while preserving relative method behaviour.
    """

    error_mode: ErrorMode = ErrorMode.ER
    error_bound: float = 0.05
    area_con: Optional[float] = None  # default: Area_ori (paper setup)
    num_vectors: int = 2048
    seed: int = 0
    wd: float = 0.8
    depth_mode: DepthMode = DepthMode.DELAY
    effort: float = 1.0
    max_sizing_moves: int = 120
    pre_synth: bool = False  # run cleanup passes on the input netlist


def _scaled(value: int, effort: float, minimum: int) -> int:
    return max(int(round(value * effort)), minimum)


def make_optimizer(
    method: str, ctx: EvalContext, cfg: FlowConfig
):
    """Instantiate a paper method by column name."""
    e = cfg.effort
    if method == "Ours":
        return DCGWO(
            ctx,
            cfg.error_bound,
            DCGWOConfig(
                population_size=_scaled(30, e, 6),
                imax=_scaled(20, e, 4),
                wd=cfg.wd,
                seed=cfg.seed,
                depth_mode=cfg.depth_mode,
            ),
        )
    if method == "GWO":
        return SingleChaseGWO(
            ctx,
            cfg.error_bound,
            GWOConfig(
                population_size=_scaled(30, e, 6),
                imax=_scaled(20, e, 4),
                wd=cfg.wd,
                seed=cfg.seed,
                depth_mode=cfg.depth_mode,
            ),
        )
    if method == "VECBEE-S":
        return VecbeeSasimi(
            ctx,
            cfg.error_bound,
            SasimiConfig(
                max_changes=_scaled(60, e, 10),
                beam=_scaled(8, e, 8),
                seed=cfg.seed,
            ),
        )
    if method == "VaACS":
        return VaACS(
            ctx,
            cfg.error_bound,
            VaacsConfig(
                population_size=_scaled(30, e, 6),
                generations=_scaled(20, e, 4),
                seed=cfg.seed,
            ),
        )
    if method == "HEDALS":
        return HedalsLike(
            ctx,
            cfg.error_bound,
            HedalsConfig(
                max_changes=_scaled(60, e, 10),
                beam=_scaled(8, e, 8),
                seed=cfg.seed,
            ),
        )
    raise ValueError(
        f"unknown method {method!r}; choose from {METHOD_NAMES}"
    )


@dataclass
class FlowResult:
    """Everything Tables II/III report for one (circuit, method) cell."""

    method: str
    circuit: Circuit  # the final approximate netlist, post-optimized
    cpd_ori: float
    cpd_fac: float
    area_ori: float
    area_fac: float
    error: float
    runtime_s: float
    optimization: OptimizationResult
    postopt: PostOptResult

    @property
    def ratio_cpd(self) -> float:
        """The paper's ``Ratio_cpd = CPD_fac / CPD_ori``."""
        return self.cpd_fac / self.cpd_ori


def run_flow(
    accurate: Circuit,
    method: str = "Ours",
    config: Optional[FlowConfig] = None,
    library: Optional[Library] = None,
    ctx: Optional[EvalContext] = None,
) -> FlowResult:
    """Run optimizer + post-optimization on one accurate circuit.

    Pass a pre-built ``ctx`` to share the (expensive) reference
    simulation across methods in a comparison sweep.
    """
    cfg = config or FlowConfig()
    lib = library or default_library()
    start = time.perf_counter()
    if ctx is None:
        if cfg.pre_synth:
            from .synth import optimize_netlist

            accurate = accurate.copy()
            optimize_netlist(accurate)
        ctx = EvalContext.build(
            accurate,
            lib,
            cfg.error_mode,
            num_vectors=cfg.num_vectors,
            seed=cfg.seed,
            wd=cfg.wd,
            depth_mode=cfg.depth_mode,
        )
    optimizer = make_optimizer(method, ctx, cfg)
    opt_result = optimizer.optimize()
    area_con = cfg.area_con if cfg.area_con is not None else ctx.area_ori
    post = post_optimize(
        opt_result.best.circuit,
        lib,
        area_con,
        sta=ctx.sta,
        max_moves=cfg.max_sizing_moves,
    )
    return FlowResult(
        method=method,
        circuit=post.circuit,
        cpd_ori=ctx.cpd_ori,
        cpd_fac=post.cpd_after,
        area_ori=ctx.area_ori,
        area_fac=post.circuit.area(lib),
        error=opt_result.best.error,
        runtime_s=time.perf_counter() - start,
        optimization=opt_result,
        postopt=post,
    )


def compare_methods(
    accurate: Circuit,
    methods=METHOD_NAMES,
    config: Optional[FlowConfig] = None,
    library: Optional[Library] = None,
) -> Dict[str, FlowResult]:
    """Run several methods against one circuit with a shared context."""
    cfg = config or FlowConfig()
    lib = library or default_library()
    ctx = EvalContext.build(
        accurate,
        lib,
        cfg.error_mode,
        num_vectors=cfg.num_vectors,
        seed=cfg.seed,
        wd=cfg.wd,
        depth_mode=cfg.depth_mode,
    )
    return {
        method: run_flow(accurate, method, cfg, lib, ctx=ctx)
        for method in methods
    }
