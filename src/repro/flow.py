"""End-to-end timing-driven ALS flow (the paper's Problem 1).

Given a post-synthesis netlist: run an approximate optimizer (DCGWO or
any baseline) under an error constraint, then post-optimize under an
area constraint, and report the final critical-path-delay ratio

    Ratio_cpd = CPD_fac / CPD_ori

which is the headline metric of Tables II/III and Figs. 6-8.  Every
method flows through the same evaluation context and the same
post-optimization, exactly as the paper's experimental setup prescribes
("all final generated circuits experience post-optimization under
Area_con").

This module is now a thin compatibility layer over the two pieces that
replaced it:

* the **method registry** (:mod:`repro.registry`) — ``make_optimizer``
  is a pure registry lookup, with no per-method branching; new methods
  plug in by decorating their class with ``@register_method`` and never
  touch this file;
* the **session facade** (:mod:`repro.session`) — ``run_flow`` and
  ``compare_methods`` construct a one-shot :class:`~repro.session
  .Session` and delegate.

New code should use :class:`repro.session.Session` directly (it adds
streaming callbacks, pause/checkpoint/resume, and batched generation
evaluation); these shims are kept so existing callers and notebooks
keep working unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from .cells import Library
from .core import EvalContext
from .netlist import Circuit
from .registry import get_method, method_names
from .session import FlowConfig, FlowResult, Session

__all__ = [
    "METHOD_NAMES",
    "FlowConfig",
    "FlowResult",
    "make_optimizer",
    "run_flow",
    "compare_methods",
]


def _method_names_tuple() -> tuple:
    return method_names()


#: Paper column names for every registered method (registry-backed).
METHOD_NAMES = _method_names_tuple()


def make_optimizer(method: str, ctx: EvalContext, cfg: FlowConfig) -> Any:
    """Instantiate a paper method by column name (registry lookup).

    Deprecated shim: prefer ``Session.optimizer(method)`` or
    :func:`repro.registry.get_method`.
    """
    return get_method(method).build(ctx, cfg)


def run_flow(
    accurate: Circuit,
    method: str = "Ours",
    config: Optional[FlowConfig] = None,
    library: Optional[Library] = None,
    ctx: Optional[EvalContext] = None,
    jobs: Optional[int] = None,
) -> FlowResult:
    """Run optimizer + post-optimization on one accurate circuit.

    Deprecated shim over :meth:`repro.session.Session.run`.  Pass a
    pre-built ``ctx`` to share the (expensive) reference simulation
    across methods in a comparison sweep; ``jobs > 1`` shards the
    generation evaluation across worker processes (bit-identical).
    """
    session = Session(accurate, config=config, library=library, ctx=ctx)
    try:
        return session.run(method, jobs=jobs)
    finally:
        if ctx is None:  # a caller-owned context keeps its warm pool
            session.close()


def compare_methods(
    accurate: Circuit,
    methods: Sequence[str] = METHOD_NAMES,
    config: Optional[FlowConfig] = None,
    library: Optional[Library] = None,
    jobs: Optional[int] = None,
) -> Dict[str, FlowResult]:
    """Run several methods against one circuit with a shared context.

    Deprecated shim over :meth:`repro.session.Session.compare`;
    ``jobs > 1`` runs whole methods concurrently, one per worker.
    """
    session = Session(accurate, config=config, library=library)
    try:
        return session.compare(methods, jobs=jobs)
    finally:
        session.close()
