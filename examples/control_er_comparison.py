#!/usr/bin/env python3
"""Random/control scenario: a Table II-style method comparison under ER.

Optimises two random/control benchmarks (the c880-class ALU and the
c1908-class SEC/DED decoder) under a 5 % error-rate constraint with all
five methods, and prints a Table II-style comparison grid.

Run with ``python examples/control_er_comparison.py``.
"""

from repro import ErrorMode, FlowConfig, compare_methods, METHOD_NAMES
from repro.bench import build_benchmark
from repro.reporting import ComparisonRow, format_comparison_table

def main() -> None:
    rows = []
    for name in ("c880", "c1908"):
        accurate = build_benchmark(name)
        config = FlowConfig(
            error_mode=ErrorMode.ER,
            error_bound=0.05,  # the paper's loosest ER constraint
            num_vectors=2048,
            effort=0.4,
            seed=2,
        )
        results = compare_methods(accurate, config=config)
        row = ComparisonRow(
            circuit=name,
            area_con=results["Ours"].area_ori,
        )
        for method, result in results.items():
            row.ratios[method] = result.ratio_cpd
            row.runtimes[method] = result.runtime_s
        rows.append(row)

    print(format_comparison_table(
        "Method comparison under 5% ER (cf. paper Table II)",
        rows,
        METHOD_NAMES,
    ))
    print("\nLower Ratio_cpd is better; every method ran through the same")
    print("post-optimization under Area_con = Area_ori, as in the paper.")

if __name__ == "__main__":
    main()
