#!/usr/bin/env python3
"""Bring your own netlist: builder API, Verilog round-trip, STA, LACs.

Shows the substrate layers directly, without the optimizer:

1. build a small parity+compare datapath with :class:`CircuitBuilder`;
2. write it to structural Verilog and parse it back;
3. run STA and print the PrimeTime-style path report;
4. apply a hand-picked wire-by-constant LAC and measure the exact error
   with exhaustive vectors.

Run with ``python examples/custom_netlist_io.py``.
"""

from repro import STAEngine, default_library
from repro.core import LAC, applied_copy
from repro.netlist import (
    CONST0,
    CircuitBuilder,
    parse_verilog,
    write_verilog,
)
from repro.sim import (
    ErrorMode,
    error_report,
    exhaustive_vectors,
    rank_switches,
    simulate,
)
from repro.sta import format_path, format_summary

def build_datapath():
    b = CircuitBuilder("parity_cmp")
    a = b.pis(4, "a")
    c = b.pis(4, "b")
    parity = b.reduce_tree("XOR2", a + c)
    gt = b.greater_than(a, c)
    b.po(parity, "parity")
    b.po(gt, "agtb")
    b.po(b.and2(parity, gt), "both")
    return b.done()

def main() -> None:
    library = default_library()
    circuit = build_datapath()

    # --- Verilog round trip -----------------------------------------
    text = write_verilog(circuit)
    print(text)
    parsed = parse_verilog(text)
    assert parsed.num_gates == circuit.num_gates

    # --- Static timing analysis --------------------------------------
    engine = STAEngine(library)
    report = engine.analyze(circuit)
    print(format_summary(report, library))
    print()
    print(format_path(report))

    # --- Inspect LAC candidates on the slowest gate -------------------
    vecs = exhaustive_vectors(len(circuit.pi_ids))
    values = simulate(circuit, vecs)
    worst_gate = max(
        circuit.logic_ids(), key=lambda g: report.arrival[g]
    )
    print(f"\nswitch candidates for gate {worst_gate} "
          f"({circuit.cells[worst_gate]}):")
    for switch, sim in rank_switches(
        circuit, values, worst_gate, vecs.num_vectors
    )[:5]:
        kind = "const" if switch < 0 else f"gate {switch}"
        print(f"  {kind:10s} similarity {sim:.3f}")

    # --- Apply one LAC and measure the exact error --------------------
    approx = applied_copy(circuit, LAC(worst_gate, CONST0))
    values_app = simulate(approx, vecs)
    rep = error_report(
        ErrorMode.ER, circuit, values, approx, values_app, vecs
    )
    approx_timing = engine.analyze(approx)
    print(f"\nafter wire-by-constant on gate {worst_gate}:")
    print(f"  exact ER   = {rep.error_rate:.4f}")
    print(f"  CPD        = {report.cpd:.2f} -> {approx_timing.cpd:.2f} ps")

if __name__ == "__main__":
    main()
