#!/usr/bin/env python3
"""Arithmetic scenario: quality/accuracy trade-off on approximate adders.

Sweeps the NMED bound over the paper's five constraint points on a 16-bit
adder and a 16-bit max unit, comparing DCGWO against the HEDALS-style
depth-driven baseline — a miniature of the paper's Fig. 7(b).

One :class:`repro.Session` is opened per (circuit, bound) point, and both
methods run against that shared evaluation context — the reference
simulation and STA baseline are built once per point instead of once per
(method, point), exactly the sharing the paper's experimental setup
prescribes.

Run with ``python examples/arithmetic_nmed_sweep.py``.
"""

from repro import ErrorMode, FlowConfig, Session
from repro.bench import max_2to1_circuit, ripple_adder_circuit
from repro.reporting import format_series

#: The paper's NMED sweep (Fig. 7b), in fractional units.
NMED_POINTS = [0.0048, 0.0098, 0.0147, 0.0196, 0.0244]

METHODS = ("HEDALS", "Ours")

def main() -> None:
    circuits = {
        "adder16": ripple_adder_circuit(16, "adder16"),
        "max16": max_2to1_circuit(16, "max16"),
    }
    for name, accurate in circuits.items():
        series = {method: [] for method in METHODS}
        for bound in NMED_POINTS:
            session = Session(accurate, FlowConfig(
                error_mode=ErrorMode.NMED,
                error_bound=bound,
                num_vectors=2048,
                effort=0.4,
                seed=1,
            ))
            for method, result in session.compare(METHODS).items():
                series[method].append(result.ratio_cpd)
        print()
        print(format_series(
            f"Ratio_cpd vs NMED bound on {name} (cf. paper Fig. 7b)",
            "NMED",
            [f"{100 * b:.2f}%" for b in NMED_POINTS],
            series,
        ))
        # The defining trend: looser error budgets buy more speed.
        for method, values in series.items():
            trend = "monotone" if all(
                b <= a + 0.05 for a, b in zip(values, values[1:])
            ) else "noisy"
            print(f"  {method}: {trend} improvement with looser bounds")

if __name__ == "__main__":
    main()
