#!/usr/bin/env python3
"""Quickstart: approximate a 16-bit adder for timing under an NMED bound.

Runs the paper's full pipeline on one circuit:

1. build the accurate gate-level netlist (a mapped ripple-carry adder);
2. run the double-chase grey wolf optimizer under a 2.44 % NMED bound;
3. post-optimize (delete dangling gates, resize under the original area);
4. report CPD / area / error before and after, plus the critical path.

Run with ``python examples/quickstart.py``.  Takes a few seconds.
"""

from repro import ErrorMode, FlowConfig, run_flow
from repro.bench import ripple_adder_circuit
from repro.netlist import write_verilog
from repro.sta import format_path

def main() -> None:
    accurate = ripple_adder_circuit(16, "adder16")
    print(f"accurate circuit: {accurate}")

    config = FlowConfig(
        error_mode=ErrorMode.NMED,
        error_bound=0.0244,  # the paper's loosest NMED constraint
        num_vectors=2048,
        effort=0.5,  # half-scale population/iterations for a quick demo
        seed=0,
    )
    result = run_flow(accurate, method="Ours", config=config)

    print(f"\nCPD:   {result.cpd_ori:8.2f} ps -> {result.cpd_fac:8.2f} ps "
          f"(Ratio_cpd = {result.ratio_cpd:.4f})")
    print(f"area:  {result.area_ori:8.2f}    -> {result.area_fac:8.2f} um^2 "
          f"(constraint: {result.area_ori:.2f})")
    print(f"NMED:  {result.error:.5f} (bound {config.error_bound})")
    print(f"gates: {accurate.num_gates} -> {result.circuit.num_gates} "
          f"({result.postopt.dangling_removed} dangling removed, "
          f"{result.postopt.sizing.num_moves} gates upsized)")

    print("\nfinal critical path:")
    report = result.optimization.best.report
    from repro import STAEngine, default_library
    final_report = STAEngine(default_library()).analyze(result.circuit)
    print(format_path(final_report))

    out = "approx_adder16.v"
    with open(out, "w") as f:
        f.write(write_verilog(result.circuit))
    print(f"\napproximate netlist written to {out}")

if __name__ == "__main__":
    main()
