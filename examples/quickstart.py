#!/usr/bin/env python3
"""Quickstart: approximate a 16-bit adder for timing under an NMED bound.

Runs the paper's full pipeline on one circuit through the ``Session``
facade:

1. build the accurate gate-level netlist (a mapped ripple-carry adder);
2. open a :class:`repro.Session` (reference simulation + STA baseline);
3. run the double-chase grey wolf optimizer under a 2.44 % NMED bound,
   streaming per-iteration progress through a ``RunCallback``;
4. post-optimize (delete dangling gates, resize under the original area);
5. report CPD / area / error before and after, plus the critical path.

Run with ``python examples/quickstart.py``.  Takes a few seconds.
"""

from repro import ErrorMode, FlowConfig, RunCallback, Session
from repro.bench import ripple_adder_circuit
from repro.netlist import write_verilog
from repro.sta import format_path


class Progress(RunCallback):
    """Minimal streaming consumer: one line per optimizer iteration."""

    def on_iteration(self, event) -> None:
        print(f"  iter {event.iteration}/{event.total_iterations}: "
              f"fitness {event.stats.best_fitness:.4f}, "
              f"error {event.stats.best_error:.5f}, "
              f"{event.stats.evaluations} evaluations")


def main() -> None:
    accurate = ripple_adder_circuit(16, "adder16")
    print(f"accurate circuit: {accurate}")

    session = Session(accurate, FlowConfig(
        error_mode=ErrorMode.NMED,
        error_bound=0.0244,  # the paper's loosest NMED constraint
        num_vectors=2048,
        effort=0.5,  # half-scale population/iterations for a quick demo
        seed=0,
    ))
    result = session.run("Ours", callbacks=Progress())

    print(f"\nCPD:   {result.cpd_ori:8.2f} ps -> {result.cpd_fac:8.2f} ps "
          f"(Ratio_cpd = {result.ratio_cpd:.4f})")
    print(f"area:  {result.area_ori:8.2f}    -> {result.area_fac:8.2f} um^2 "
          f"(constraint: {result.area_ori:.2f})")
    print(f"NMED:  {result.error:.5f} (bound {session.config.error_bound})")
    print(f"gates: {accurate.num_gates} -> {result.circuit.num_gates} "
          f"({result.postopt.dangling_removed} dangling removed, "
          f"{result.postopt.sizing.num_moves} gates upsized)")

    print("\nfinal critical path:")
    from repro import STAEngine, default_library
    final_report = STAEngine(default_library()).analyze(result.circuit)
    print(format_path(final_report))

    out = "approx_adder16.v"
    with open(out, "w") as f:
        f.write(write_verilog(result.circuit))
    print(f"\napproximate netlist written to {out}")

if __name__ == "__main__":
    main()
