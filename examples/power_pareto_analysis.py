#!/usr/bin/env python3
"""Deep-dive analysis: power savings, Pareto front, and LAC traces.

Beyond the headline Ratio_cpd, this example shows what the optimizer
actually did to a circuit:

1. run DCGWO on a 16-bit Kogge-Stone adder under a 1 % NMED bound;
2. print the per-iteration convergence table;
3. print the surviving (fd, fa) Pareto front;
4. diff the approximate netlist against the accurate one (the effective
   LAC list);
5. compare dynamic/leakage power before and after.

Run with ``python examples/power_pareto_analysis.py``.
"""

from repro import ErrorMode, FlowConfig, run_flow, default_library
from repro.bench import kogge_stone_adder_circuit
from repro.core import format_convergence, format_diff, format_pareto_front
from repro.sim import random_vectors, simulate
from repro.sta import STAEngine, estimate_power

def main() -> None:
    library = default_library()
    accurate = kogge_stone_adder_circuit(16, "ks16")

    config = FlowConfig(
        error_mode=ErrorMode.NMED,
        error_bound=0.01,
        num_vectors=2048,
        effort=0.5,
        seed=7,
    )
    result = run_flow(accurate, method="Ours", config=config)

    print("convergence (best population member per iteration):")
    print(format_convergence(result.optimization))

    print("\nfinal (fd, fa) Pareto front:")
    print(format_pareto_front(result.optimization.population))

    print("\neffective approximate changes:")
    print(format_diff(accurate, result.optimization.best.circuit))

    # --- power before/after -------------------------------------------
    vecs = random_vectors(len(accurate.pi_ids), 4096, seed=11)
    engine = STAEngine(library)
    p_before = estimate_power(
        accurate, library, simulate(accurate, vecs), vecs, engine
    )
    p_after = estimate_power(
        result.circuit, library, simulate(result.circuit, vecs), vecs,
        engine,
    )
    print(f"\npower: {p_before.total_uw:.2f} uW -> "
          f"{p_after.total_uw:.2f} uW "
          f"(dynamic {p_before.dynamic_uw:.2f} -> "
          f"{p_after.dynamic_uw:.2f})")
    print(f"CPD:   {result.cpd_ori:.2f} ps -> {result.cpd_fac:.2f} ps "
          f"(Ratio_cpd {result.ratio_cpd:.4f}, NMED {result.error:.5f})")

if __name__ == "__main__":
    main()
